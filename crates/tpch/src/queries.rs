//! Plan templates for the 22 TPC-H queries and the RF1/RF2 refresh
//! functions.
//!
//! The paper never needs query *answers* — every experiment is driven by
//! the block-level access behaviour of the queries: which tables are
//! scanned sequentially, which tables and indexes are probed randomly (and
//! from which plan level, which determines their caching priority), and
//! how much temporary data the blocking operators spill. The templates
//! below encode that behaviour, parameterised by the database scale so the
//! access volumes track table sizes:
//!
//! * the plans the paper prints are reproduced structurally — Q9
//!   (Figure 7: index scans on `supplier` and `orders` at two different
//!   levels), Q21 (Figure 8: index scans on `orders` and `lineitem` plus
//!   two sequential scans of `lineitem`) and Q18 (Figure 10: large hash
//!   spills over `lineitem`),
//! * the remaining queries follow the standard PostgreSQL plan shapes for
//!   a TPC-H database that only has the nine indexes of Table 3: mostly
//!   sequential scans feeding hash joins, with modest spills.

use crate::database::TpchDatabase;
use crate::schema::{TpchIndex, TpchTable};
use hstorage_engine::{Access, ObjectId, OperatorKind, PlanNode, PlanTree};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a TPC-H query or refresh function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueryId {
    /// One of Q1–Q22.
    Q(u8),
    /// Refresh function 1 (inserts into `orders`/`lineitem`).
    Rf1,
    /// Refresh function 2 (deletes from `orders`/`lineitem`).
    Rf2,
}

impl QueryId {
    /// The 22 read-only queries in numeric order.
    pub fn all_queries() -> Vec<QueryId> {
        (1..=22).map(QueryId::Q).collect()
    }

    /// Display name ("Q1", "RF1", …).
    pub fn name(&self) -> String {
        match self {
            QueryId::Q(n) => format!("Q{n}"),
            QueryId::Rf1 => "RF1".to_string(),
            QueryId::Rf2 => "RF2".to_string(),
        }
    }

    /// Whether this is one of the two refresh (update) functions.
    pub fn is_refresh(&self) -> bool {
        matches!(self, QueryId::Rf1 | QueryId::Rf2)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

// ---------------------------------------------------------------------------
// Plan-construction helpers
// ---------------------------------------------------------------------------

fn seq(db: &TpchDatabase, table: TpchTable) -> PlanNode {
    PlanNode::leaf(
        OperatorKind::SeqScan,
        Access::SeqScan {
            table: db.table(table),
            passes: 1,
        },
    )
}

fn idx(
    db: &TpchDatabase,
    index: TpchIndex,
    lookups: u64,
    index_hot: f64,
    table_hot: f64,
) -> PlanNode {
    PlanNode::leaf(
        OperatorKind::IndexScan,
        Access::IndexScan {
            index: db.index(index),
            table: db.table(index.table()),
            lookups,
            index_hot_fraction: index_hot,
            table_hot_fraction: table_hot,
        },
    )
}

/// A blocking hash build over `input` that spills `blocks` of temporary
/// data, read back `read_passes` times.
fn hash_spill(blocks: u64, read_passes: u32, input: PlanNode) -> PlanNode {
    PlanNode::node(
        OperatorKind::Hash,
        Access::TempSpill {
            blocks,
            read_passes,
        },
        vec![input],
    )
}

/// A blocking in-memory hash build (no spill).
fn hash(input: PlanNode) -> PlanNode {
    PlanNode::node(OperatorKind::Hash, Access::None, vec![input])
}

/// A blocking sort that spills `blocks` of temporary data.
fn sort_spill(blocks: u64, input: PlanNode) -> PlanNode {
    PlanNode::node(
        OperatorKind::Sort,
        Access::TempSpill {
            blocks,
            read_passes: 1,
        },
        vec![input],
    )
}

fn hash_join(left: PlanNode, right: PlanNode) -> PlanNode {
    PlanNode::node(OperatorKind::HashJoin, Access::None, vec![left, right])
}

fn nested_loop(outer: PlanNode, inner: PlanNode) -> PlanNode {
    PlanNode::node(OperatorKind::NestedLoop, Access::None, vec![outer, inner])
}

fn aggregate(input: PlanNode) -> PlanNode {
    PlanNode::node(OperatorKind::Aggregate, Access::None, vec![input])
}

fn update(db: &TpchDatabase, table: TpchTable, blocks: u64) -> PlanNode {
    PlanNode::leaf(
        OperatorKind::Update,
        Access::Update {
            table: db.table(table),
            blocks: blocks.max(1),
        },
    )
}

fn blocks(db: &TpchDatabase, table: TpchTable) -> u64 {
    db.table_blocks(table)
}

fn frac(value: u64, fraction: f64) -> u64 {
    ((value as f64 * fraction).round() as u64).max(1)
}

// ---------------------------------------------------------------------------
// Per-query templates
// ---------------------------------------------------------------------------

/// Builds the plan template for `query` against the given database.
pub fn build_plan(query: QueryId, db: &TpchDatabase) -> PlanTree {
    let l = blocks(db, TpchTable::Lineitem);
    let o = blocks(db, TpchTable::Orders);
    let ps = blocks(db, TpchTable::Partsupp);
    let p = blocks(db, TpchTable::Part);
    let c = blocks(db, TpchTable::Customer);
    let s = blocks(db, TpchTable::Supplier);

    let root = match query {
        // Q1: pricing summary report — one full scan of lineitem feeding an
        // in-memory aggregation. Dominated by sequential requests (Fig. 5).
        QueryId::Q(1) => aggregate(seq(db, TpchTable::Lineitem)),

        // Q2: minimum cost supplier — small tables joined under part/partsupp.
        QueryId::Q(2) => aggregate(hash_join(
            hash_join(seq(db, TpchTable::Partsupp), hash(seq(db, TpchTable::Part))),
            hash(hash_join(
                seq(db, TpchTable::Supplier),
                hash(seq(db, TpchTable::Nation)),
            )),
        )),

        // Q3: shipping priority — customer ⋈ orders ⋈ lineitem with a sort.
        QueryId::Q(3) => sort_spill(
            frac(o, 0.05),
            hash_join(
                hash_join(
                    seq(db, TpchTable::Lineitem),
                    hash(seq(db, TpchTable::Orders)),
                ),
                hash(seq(db, TpchTable::Customer)),
            ),
        ),

        // Q4: order priority checking — orders with a semi-join on lineitem.
        QueryId::Q(4) => aggregate(hash_join(
            seq(db, TpchTable::Orders),
            hash_spill(frac(l, 0.04), 1, seq(db, TpchTable::Lineitem)),
        )),

        // Q5: local supplier volume — six-way join, all sequential scans
        // feeding hash joins (one of the Fig. 5 sequential-dominated queries).
        QueryId::Q(5) => aggregate(hash_join(
            hash_join(
                hash_join(
                    seq(db, TpchTable::Lineitem),
                    hash(seq(db, TpchTable::Orders)),
                ),
                hash(seq(db, TpchTable::Customer)),
            ),
            hash(hash_join(
                seq(db, TpchTable::Supplier),
                hash(hash_join(
                    seq(db, TpchTable::Nation),
                    hash(seq(db, TpchTable::Region)),
                )),
            )),
        )),

        // Q6: forecasting revenue change — a pure lineitem scan.
        QueryId::Q(6) => aggregate(seq(db, TpchTable::Lineitem)),

        // Q7: volume shipping — lineitem ⋈ orders ⋈ supplier ⋈ customer.
        QueryId::Q(7) => aggregate(hash_join(
            hash_join(
                hash_join(
                    seq(db, TpchTable::Lineitem),
                    hash(seq(db, TpchTable::Supplier)),
                ),
                hash_spill(frac(o, 0.10), 1, seq(db, TpchTable::Orders)),
            ),
            hash(hash_join(
                seq(db, TpchTable::Customer),
                hash(seq(db, TpchTable::Nation)),
            )),
        )),

        // Q8: national market share — part-filtered join over lineitem.
        QueryId::Q(8) => aggregate(hash_join(
            hash_join(
                hash_join(seq(db, TpchTable::Lineitem), hash(seq(db, TpchTable::Part))),
                hash_spill(frac(o, 0.08), 1, seq(db, TpchTable::Orders)),
            ),
            hash(hash_join(
                seq(db, TpchTable::Customer),
                hash(hash_join(
                    seq(db, TpchTable::Supplier),
                    hash(seq(db, TpchTable::Nation)),
                )),
            )),
        )),

        // Q9: product type profit measure — the paper's Figure 7: sequential
        // scans of part and lineitem with *index scans* on two objects at
        // different plan levels (priority 2 for the deeper one, priority 3
        // for the higher one). The paper's deep probe targets `supplier`;
        // at reduced scale supplier is so small that the DBMS buffer pool
        // absorbs it entirely, so we probe `partsupp` (the next join
        // partner of the same subtree) to keep priority-2 storage traffic
        // observable — see DESIGN.md.
        QueryId::Q(9) => {
            let deep_probe = idx(db, TpchIndex::PartsuppPartkey, 2 * o, 1.0, 1.0);
            let deep_join = hash_join(deep_probe, seq(db, TpchTable::Lineitem));
            let orders_probe = idx(db, TpchIndex::OrdersOrderkey, 3 * o, 0.8, 0.6);
            let mid_join = nested_loop(deep_join, orders_probe);
            let with_supplier = nested_loop(mid_join, seq(db, TpchTable::Supplier));
            let with_part = hash_join(with_supplier, hash(seq(db, TpchTable::Part)));
            aggregate(with_part)
        }

        // Q10: returned item reporting — customer ⋈ orders ⋈ lineitem.
        QueryId::Q(10) => sort_spill(
            frac(c, 0.10),
            hash_join(
                hash_join(
                    seq(db, TpchTable::Lineitem),
                    hash(seq(db, TpchTable::Orders)),
                ),
                hash(seq(db, TpchTable::Customer)),
            ),
        ),

        // Q11: important stock identification — partsupp ⋈ supplier ⋈
        // nation. One of the Fig. 5 sequential-dominated queries.
        QueryId::Q(11) => aggregate(hash_join(
            hash_join(
                seq(db, TpchTable::Partsupp),
                hash(seq(db, TpchTable::Supplier)),
            ),
            hash(seq(db, TpchTable::Nation)),
        )),

        // Q12: shipping modes — lineitem ⋈ orders.
        QueryId::Q(12) => aggregate(hash_join(
            seq(db, TpchTable::Lineitem),
            hash_spill(frac(o, 0.12), 1, seq(db, TpchTable::Orders)),
        )),

        // Q13: customer distribution — big outer join with a sizeable spill.
        QueryId::Q(13) => aggregate(hash_join(
            seq(db, TpchTable::Orders),
            hash_spill(frac(c, 0.5), 1, seq(db, TpchTable::Customer)),
        )),

        // Q14: promotion effect — lineitem ⋈ part.
        QueryId::Q(14) => aggregate(hash_join(
            seq(db, TpchTable::Lineitem),
            hash(seq(db, TpchTable::Part)),
        )),

        // Q15: top supplier — lineitem scanned twice (view + main query).
        QueryId::Q(15) => aggregate(hash_join(
            PlanNode::leaf(
                OperatorKind::SeqScan,
                Access::SeqScan {
                    table: db.table(TpchTable::Lineitem),
                    passes: 2,
                },
            ),
            hash(seq(db, TpchTable::Supplier)),
        )),

        // Q16: parts/supplier relationship — partsupp ⋈ part.
        QueryId::Q(16) => aggregate(hash_join(
            seq(db, TpchTable::Partsupp),
            hash_spill(frac(p, 0.3), 1, seq(db, TpchTable::Part)),
        )),

        // Q17: small-quantity-order revenue — lineitem with a correlated
        // aggregate over lineitem via the part key index.
        QueryId::Q(17) => aggregate(nested_loop(
            hash_join(seq(db, TpchTable::Part), hash(seq(db, TpchTable::Lineitem))),
            idx(db, TpchIndex::LineitemPartkey, frac(p, 2.0), 0.6, 0.4),
        )),

        // Q18: large volume customer — the paper's Figure 10: hash
        // aggregation over the full lineitem table spills a large amount of
        // temporary data (the shaded hash operators), plus scans of orders
        // and customer. The temp-data-dominated query of Fig. 9.
        QueryId::Q(18) => {
            let big_hash = hash_spill(frac(l, 0.30), 1, seq(db, TpchTable::Lineitem));
            let join_orders = hash_join(seq(db, TpchTable::Orders), big_hash);
            let with_customer = hash_join(join_orders, hash(seq(db, TpchTable::Customer)));
            let second_hash = hash_spill(frac(l, 0.12), 1, seq(db, TpchTable::Lineitem));
            aggregate(hash_join(with_customer, second_hash))
        }

        // Q19: discounted revenue — lineitem ⋈ part with complex predicates,
        // all sequential (one of the Fig. 5 queries).
        QueryId::Q(19) => aggregate(hash_join(
            seq(db, TpchTable::Lineitem),
            hash(seq(db, TpchTable::Part)),
        )),

        // Q20: potential part promotion — partsupp/part with a correlated
        // lineitem subquery via the part-key index.
        QueryId::Q(20) => aggregate(nested_loop(
            hash_join(
                seq(db, TpchTable::Partsupp),
                hash(hash_join(
                    seq(db, TpchTable::Supplier),
                    hash(seq(db, TpchTable::Nation)),
                )),
            ),
            idx(db, TpchIndex::LineitemPartkey, frac(ps, 0.5), 0.5, 0.3),
        )),

        // Q21: suppliers who kept orders waiting — the paper's Figure 8:
        // index scans on orders (deepest random operator → priority 2) and
        // on lineitem (higher level → priority 3), plus two sequential
        // scans of lineitem (the EXISTS / NOT EXISTS subqueries).
        QueryId::Q(21) => {
            let orders_probe = idx(db, TpchIndex::OrdersOrderkey, 3 * o, 0.9, 0.8);
            let deep_join = hash_join(orders_probe, seq(db, TpchTable::Lineitem));
            let lineitem_probe = idx(db, TpchIndex::LineitemOrderkey, 2 * o, 0.7, 0.55);
            let mid_join = nested_loop(deep_join, lineitem_probe);
            let exists_scan = seq(db, TpchTable::Lineitem);
            let top_join = nested_loop(mid_join, exists_scan);
            aggregate(hash_join(top_join, hash(seq(db, TpchTable::Supplier))))
        }

        // Q22: global sales opportunity — customer with an orders
        // anti-join via the customer key.
        QueryId::Q(22) => aggregate(hash_join(
            seq(db, TpchTable::Orders),
            hash_spill(frac(c, 0.2), 1, seq(db, TpchTable::Customer)),
        )),

        QueryId::Q(n) => panic!("unknown TPC-H query number {n}"),

        // RF1: insert SF*1500 orders and their lineitems.
        QueryId::Rf1 => PlanNode::node(
            OperatorKind::Result,
            Access::None,
            vec![
                update(db, TpchTable::Orders, frac(o, 0.001)),
                update(db, TpchTable::Lineitem, frac(l, 0.001)),
            ],
        ),

        // RF2: delete the same volume.
        QueryId::Rf2 => PlanNode::node(
            OperatorKind::Result,
            Access::None,
            vec![
                update(db, TpchTable::Orders, frac(o, 0.001)),
                update(db, TpchTable::Lineitem, frac(l, 0.001)),
            ],
        ),
    };

    // Silence "unused" for sizes only used by some arms.
    let _ = (s, c, p, ps);
    PlanTree::new(query.name(), root)
}

/// Convenience: builds every read-only query plan.
pub fn all_query_plans(db: &TpchDatabase) -> Vec<PlanTree> {
    QueryId::all_queries()
        .into_iter()
        .map(|q| build_plan(q, db))
        .collect()
}

/// Returns the object ids a query accesses randomly (used by tests).
pub fn random_objects(plan: &PlanTree) -> Vec<ObjectId> {
    plan.random_object_levels().keys().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::TpchScale;

    fn db() -> TpchDatabase {
        TpchDatabase::build(TpchScale::new(0.05))
    }

    #[test]
    fn every_query_builds_a_nonempty_plan() {
        let db = db();
        for q in QueryId::all_queries() {
            let plan = build_plan(q, &db);
            assert!(plan.size() >= 2, "{q} plan too small");
            assert_eq!(plan.name, q.name());
        }
        assert!(build_plan(QueryId::Rf1, &db).size() >= 2);
        assert!(build_plan(QueryId::Rf2, &db).size() >= 2);
    }

    #[test]
    fn q1_is_sequential_only() {
        let db = db();
        let plan = build_plan(QueryId::Q(1), &db);
        assert!(plan.random_object_levels().is_empty());
    }

    #[test]
    fn q9_deep_probe_sits_below_the_orders_probe() {
        let db = db();
        let plan = build_plan(QueryId::Q(9), &db);
        let levels = plan.random_object_levels();
        let deep = db.table(TpchTable::Partsupp);
        let orders = db.table(TpchTable::Orders);
        assert!(levels[&deep] < levels[&orders]);
        // Their indexes follow the same ordering.
        let d_idx = db.index(TpchIndex::PartsuppPartkey);
        let o_idx = db.index(TpchIndex::OrdersOrderkey);
        assert!(levels[&d_idx] < levels[&o_idx]);
    }

    #[test]
    fn q21_probes_orders_below_lineitem() {
        let db = db();
        let plan = build_plan(QueryId::Q(21), &db);
        let levels = plan.random_object_levels();
        let orders = db.table(TpchTable::Orders);
        let lineitem = db.table(TpchTable::Lineitem);
        assert!(levels[&orders] < levels[&lineitem]);
    }

    #[test]
    fn q18_spills_substantial_temporary_data() {
        let db = db();
        let plan = build_plan(QueryId::Q(18), &db);
        fn spilled(node: &PlanNode) -> u64 {
            let own = match node.access {
                Access::TempSpill { blocks, .. } => blocks,
                _ => 0,
            };
            own + node.children.iter().map(spilled).sum::<u64>()
        }
        let total = spilled(&plan.root);
        assert!(total > db.table_blocks(TpchTable::Lineitem) / 4);
    }

    #[test]
    fn refresh_functions_only_update() {
        let db = db();
        for q in [QueryId::Rf1, QueryId::Rf2] {
            let plan = build_plan(q, &db);
            fn all_updates(node: &PlanNode) -> bool {
                let own = matches!(node.access, Access::Update { .. } | Access::None);
                own && node.children.iter().all(all_updates)
            }
            assert!(all_updates(&plan.root), "{q} must only contain updates");
            assert!(plan.random_object_levels().is_empty());
        }
    }

    #[test]
    fn query_names_round_trip() {
        assert_eq!(QueryId::Q(9).name(), "Q9");
        assert_eq!(QueryId::Rf1.name(), "RF1");
        assert!(QueryId::Rf2.is_refresh());
        assert!(!QueryId::Q(3).is_refresh());
        assert_eq!(QueryId::all_queries().len(), 22);
    }
}
