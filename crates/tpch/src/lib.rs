//! The TPC-H substrate used by the paper's evaluation.
//!
//! The paper runs TPC-H at scale factor 30 (46 GB with the nine indexes of
//! Table 3) for the single-query experiments and scale factor 10 for the
//! throughput test. We do not need literal tuples — every experiment in
//! the paper is driven by the *block-level access behaviour* of the
//! queries — so this crate provides:
//!
//! * the schema and its scale-dependent sizing ([`schema`], [`scale`]),
//! * the nine indexes of Table 3 ([`schema::TpchIndex`]),
//! * a physical layout that registers every table and index in an engine
//!   [`Catalog`](hstorage_engine::Catalog) ([`database`]),
//! * plan templates for Q1–Q22 and the RF1/RF2 refresh functions, built
//!   from the plans the paper prints (Figures 7, 8, 10) and the standard
//!   TPC-H plan shapes ([`queries`]),
//! * the power-test ordering and throughput-test streams of the TPC-H
//!   specification ([`power`], [`throughput`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod database;
pub mod power;
pub mod queries;
pub mod scale;
pub mod schema;
pub mod throughput;

pub use database::TpchDatabase;
pub use queries::{build_plan, QueryId};
pub use scale::TpchScale;
pub use schema::{TpchIndex, TpchTable};
