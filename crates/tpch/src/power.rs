//! The TPC-H power-test ordering.
//!
//! Section 6.3.4 of the paper runs "a stream of 'randomly' ordered queries
//! … the order of power test by the TPC-H specification", with RF1 at the
//! beginning and RF2 at the end. This module provides that ordering
//! (query stream 00 of Appendix A of the TPC-H specification).

use crate::queries::QueryId;

/// The query permutation of stream 00 from the TPC-H specification.
pub const POWER_TEST_QUERY_ORDER: [u8; 22] = [
    14, 2, 9, 20, 6, 17, 18, 8, 21, 13, 3, 22, 16, 4, 11, 15, 1, 10, 19, 5, 7, 12,
];

/// The full power-test sequence: RF1, the 22 queries in the stream-00
/// order, then RF2 — exactly the sequence behind Figure 11 and Table 8.
pub fn power_test_sequence() -> Vec<QueryId> {
    let mut seq = Vec::with_capacity(24);
    seq.push(QueryId::Rf1);
    seq.extend(POWER_TEST_QUERY_ORDER.iter().map(|&n| QueryId::Q(n)));
    seq.push(QueryId::Rf2);
    seq
}

/// The paper plots short and long queries separately for readability
/// (Figure 11a/11b). A query is "long" if the paper's HDD-only execution
/// time exceeds roughly 1,000 seconds; that set is dominated by the
/// lineitem-heavy queries.
pub fn is_long_query(query: QueryId) -> bool {
    matches!(
        query,
        QueryId::Q(1)
            | QueryId::Q(5)
            | QueryId::Q(7)
            | QueryId::Q(8)
            | QueryId::Q(9)
            | QueryId::Q(18)
            | QueryId::Q(21)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_contains_every_query_once() {
        let seq = power_test_sequence();
        assert_eq!(seq.len(), 24);
        assert_eq!(seq[0], QueryId::Rf1);
        assert_eq!(*seq.last().unwrap(), QueryId::Rf2);
        let mut numbers: Vec<u8> = seq
            .iter()
            .filter_map(|q| match q {
                QueryId::Q(n) => Some(*n),
                _ => None,
            })
            .collect();
        numbers.sort_unstable();
        assert_eq!(numbers, (1..=22).collect::<Vec<u8>>());
    }

    #[test]
    fn long_and_short_queries_partition_the_set() {
        let long = QueryId::all_queries()
            .into_iter()
            .filter(|q| is_long_query(*q))
            .count();
        assert!((5..=10).contains(&long));
    }
}
