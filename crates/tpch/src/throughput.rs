//! The TPC-H throughput-test streams.
//!
//! Section 6.4 of the paper runs a throughput test with 3 query streams and
//! 1 update stream at scale factor 10, with 2 GB of main memory and a 4 GB
//! SSD cache. The query orderings are the stream permutations of
//! Appendix A of the TPC-H specification; the update stream interleaves
//! RF1/RF2 pairs, one pair per query stream.

use crate::queries::QueryId;

/// Query permutations for streams 01–03 from the TPC-H specification.
pub const STREAM_ORDERS: [[u8; 22]; 3] = [
    [
        21, 3, 18, 5, 11, 7, 6, 20, 17, 12, 16, 15, 13, 10, 2, 8, 14, 19, 9, 22, 1, 4,
    ],
    [
        6, 17, 14, 16, 19, 10, 9, 2, 15, 8, 5, 22, 12, 7, 13, 18, 1, 4, 20, 3, 11, 21,
    ],
    [
        8, 5, 4, 6, 17, 7, 1, 18, 22, 14, 9, 10, 15, 11, 20, 2, 21, 19, 13, 16, 12, 3,
    ],
];

/// The `n`-th query stream (0-based). Panics if `n >= 3`.
pub fn query_stream(n: usize) -> Vec<QueryId> {
    STREAM_ORDERS[n].iter().map(|&q| QueryId::Q(q)).collect()
}

/// The update stream: one RF1/RF2 pair per query stream, as the
/// specification requires for a throughput test with `streams` streams.
pub fn update_stream(streams: usize) -> Vec<QueryId> {
    let mut s = Vec::with_capacity(streams * 2);
    for _ in 0..streams {
        s.push(QueryId::Rf1);
        s.push(QueryId::Rf2);
    }
    s
}

/// Number of query streams the paper's throughput test uses.
pub const PAPER_QUERY_STREAMS: usize = 3;

/// The TPC-H throughput metric: `streams * 22 * 3600 / elapsed_seconds`,
/// i.e. queries completed per hour normalised over the streams.
pub fn throughput_metric(streams: usize, elapsed_seconds: f64) -> f64 {
    if elapsed_seconds <= 0.0 {
        return 0.0;
    }
    (streams * 22) as f64 * 3600.0 / elapsed_seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stream_is_a_permutation_of_the_22_queries() {
        for n in 0..3 {
            let mut nums: Vec<u8> = query_stream(n)
                .iter()
                .map(|q| match q {
                    QueryId::Q(x) => *x,
                    _ => unreachable!("query streams contain no refresh functions"),
                })
                .collect();
            nums.sort_unstable();
            assert_eq!(nums, (1..=22).collect::<Vec<u8>>());
        }
    }

    #[test]
    fn streams_are_distinct_orderings() {
        assert_ne!(STREAM_ORDERS[0], STREAM_ORDERS[1]);
        assert_ne!(STREAM_ORDERS[1], STREAM_ORDERS[2]);
    }

    #[test]
    fn update_stream_pairs_rf1_rf2() {
        let s = update_stream(3);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], QueryId::Rf1);
        assert_eq!(s[1], QueryId::Rf2);
        assert!(s.iter().all(|q| q.is_refresh()));
    }

    #[test]
    fn throughput_metric_scales_inversely_with_time() {
        let fast = throughput_metric(3, 1_000.0);
        let slow = throughput_metric(3, 2_000.0);
        assert!(fast > slow);
        assert!((fast / slow - 2.0).abs() < 1e-9);
        assert_eq!(throughput_metric(3, 0.0), 0.0);
    }
}
