//! Scale-dependent sizing of tables and indexes.

use crate::schema::{TpchIndex, TpchTable};
use hstorage_storage::BLOCK_SIZE;
use serde::{Deserialize, Serialize};

/// A TPC-H scale factor.
///
/// The paper uses SF 30 (a 46 GB database including the indexes) for the
/// single-query experiments and SF 10 (16 GB) for the throughput test. The
/// reproduction defaults to a reduced scale so every experiment runs in
/// seconds; all sizes — and the SSD cache size — are derived from the same
/// scale factor, so the cache:data ratio of the paper is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpchScale {
    /// The scale factor (1.0 ≈ 1 GB of raw data).
    pub scale_factor: f64,
}

impl TpchScale {
    /// Creates a scale.
    pub fn new(scale_factor: f64) -> Self {
        assert!(scale_factor > 0.0, "scale factor must be positive");
        TpchScale { scale_factor }
    }

    /// The default reduced scale used by the experiment harness.
    pub fn experiment_default() -> Self {
        TpchScale::new(0.25)
    }

    /// Number of rows of a table at this scale.
    pub fn rows(&self, table: TpchTable) -> u64 {
        if table.scales() {
            ((table.rows_per_sf() as f64) * self.scale_factor).ceil() as u64
        } else {
            table.rows_per_sf()
        }
    }

    /// Number of 8 KiB blocks a table occupies at this scale (at least 1).
    pub fn table_blocks(&self, table: TpchTable) -> u64 {
        let bytes = self.rows(table) * table.row_bytes();
        (bytes / BLOCK_SIZE as u64).max(1)
    }

    /// Number of blocks an index occupies at this scale (at least 1).
    pub fn index_blocks(&self, index: TpchIndex) -> u64 {
        let bytes = self.rows(index.table()) * index.entry_bytes();
        (bytes / BLOCK_SIZE as u64).max(1)
    }

    /// Total data blocks (tables + indexes).
    pub fn total_blocks(&self) -> u64 {
        let tables: u64 = TpchTable::all().iter().map(|t| self.table_blocks(*t)).sum();
        let indexes: u64 = TpchIndex::all().iter().map(|i| self.index_blocks(*i)).sum();
        tables + indexes
    }

    /// The cache size (in blocks) that preserves the paper's single-query
    /// cache:data ratio (32 GB of SSD cache over a 46 GB database).
    pub fn paper_single_query_cache_blocks(&self) -> u64 {
        (self.total_blocks() as f64 * 32.0 / 46.0).round() as u64
    }

    /// The cache size (in blocks) that preserves the paper's throughput-test
    /// ratio (4 GB of SSD cache over a 16 GB database).
    pub fn paper_throughput_cache_blocks(&self) -> u64 {
        (self.total_blocks() as f64 * 4.0 / 16.0).round() as u64
    }

    /// The buffer-pool size (in blocks) preserving the throughput test's
    /// 2 GB of main memory over a 16 GB database.
    pub fn paper_throughput_buffer_pool_blocks(&self) -> u64 {
        (self.total_blocks() as f64 * 2.0 / 16.0).round() as u64
    }
}

impl Default for TpchScale {
    fn default() -> Self {
        Self::experiment_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_dominates_the_database() {
        let s = TpchScale::new(1.0);
        let lineitem = s.table_blocks(TpchTable::Lineitem);
        for t in TpchTable::all() {
            if t != TpchTable::Lineitem {
                assert!(lineitem > s.table_blocks(t));
            }
        }
    }

    #[test]
    fn sizes_scale_linearly_for_scaling_tables() {
        let s1 = TpchScale::new(1.0);
        let s2 = TpchScale::new(2.0);
        let b1 = s1.table_blocks(TpchTable::Orders);
        let b2 = s2.table_blocks(TpchTable::Orders);
        let ratio = b2 as f64 / b1 as f64;
        assert!((ratio - 2.0).abs() < 0.05);
        // Nation and region do not scale.
        assert_eq!(
            s1.table_blocks(TpchTable::Nation),
            s2.table_blocks(TpchTable::Nation)
        );
    }

    #[test]
    fn sf1_is_roughly_one_gigabyte_of_tables() {
        let s = TpchScale::new(1.0);
        let table_bytes: u64 = TpchTable::all()
            .iter()
            .map(|t| s.table_blocks(*t) * BLOCK_SIZE as u64)
            .sum();
        let gib = table_bytes as f64 / (1u64 << 30) as f64;
        assert!(gib > 0.7 && gib < 1.6, "SF1 tables = {gib} GiB");
    }

    #[test]
    fn indexes_are_smaller_than_their_tables() {
        let s = TpchScale::new(1.0);
        for idx in TpchIndex::all() {
            assert!(s.index_blocks(idx) <= s.table_blocks(idx.table()));
        }
    }

    #[test]
    fn cache_ratios_match_paper_proportions() {
        let s = TpchScale::new(0.5);
        let total = s.total_blocks();
        let single = s.paper_single_query_cache_blocks();
        let through = s.paper_throughput_cache_blocks();
        assert!((single as f64 / total as f64 - 32.0 / 46.0).abs() < 0.01);
        assert!((through as f64 / total as f64 - 0.25).abs() < 0.01);
        assert!(single < total);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        TpchScale::new(0.0);
    }
}
