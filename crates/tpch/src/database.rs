//! The physical layout of the TPC-H database.
//!
//! Tables are laid out contiguously (largest first, as dbgen loads them),
//! followed by the nine indexes of Table 3 and a region reserved for
//! temporary files. Every object is registered in an engine
//! [`Catalog`] so that query plans can reference
//! it by [`ObjectId`].

use crate::scale::TpchScale;
use crate::schema::{TpchIndex, TpchTable};
use hstorage_engine::{Catalog, ObjectId, ObjectKind};
use hstorage_storage::BlockRange;
use std::collections::HashMap;

/// A fully laid-out TPC-H database instance.
#[derive(Debug, Clone)]
pub struct TpchDatabase {
    /// The engine catalog with every table, index and the temp region.
    pub catalog: Catalog,
    /// The scale used to size the database.
    pub scale: TpchScale,
    tables: HashMap<TpchTable, ObjectId>,
    indexes: HashMap<TpchIndex, ObjectId>,
}

impl TpchDatabase {
    /// Builds the database at the given scale.
    pub fn build(scale: TpchScale) -> Self {
        let mut catalog = Catalog::new();
        let mut tables = HashMap::new();
        let mut indexes = HashMap::new();
        let mut cursor = 0u64;

        for table in TpchTable::all() {
            let blocks = scale.table_blocks(table);
            let oid = catalog.register(
                table.name(),
                ObjectKind::Table,
                BlockRange::new(cursor, blocks),
            );
            tables.insert(table, oid);
            cursor += blocks;
        }
        for index in TpchIndex::all() {
            let blocks = scale.index_blocks(index);
            let oid = catalog.register(
                index.name(),
                ObjectKind::Index,
                BlockRange::new(cursor, blocks),
            );
            indexes.insert(index, oid);
            cursor += blocks;
        }
        // Reserve a temp region the size of the largest table: TPC-H spills
        // never exceed a fraction of lineitem.
        let temp_blocks = scale.table_blocks(TpchTable::Lineitem).max(1024);
        catalog.set_temp_region(BlockRange::new(cursor, temp_blocks));

        TpchDatabase {
            catalog,
            scale,
            tables,
            indexes,
        }
    }

    /// The object id of a table.
    pub fn table(&self, table: TpchTable) -> ObjectId {
        self.tables[&table]
    }

    /// The object id of an index.
    pub fn index(&self, index: TpchIndex) -> ObjectId {
        self.indexes[&index]
    }

    /// Number of blocks a table occupies.
    pub fn table_blocks(&self, table: TpchTable) -> u64 {
        self.scale.table_blocks(table)
    }

    /// Number of blocks an index occupies.
    pub fn index_blocks(&self, index: TpchIndex) -> u64 {
        self.scale.index_blocks(index)
    }

    /// Total data blocks (tables + indexes, excluding the temp region).
    pub fn data_blocks(&self) -> u64 {
        self.scale.total_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_objects_are_registered_without_overlap() {
        let db = TpchDatabase::build(TpchScale::new(0.1));
        assert_eq!(db.catalog.len(), 8 + 9);
        let mut ranges: Vec<BlockRange> = db.catalog.iter().map(|o| o.range).collect();
        ranges.push(db.catalog.temp_region());
        for i in 0..ranges.len() {
            for j in (i + 1)..ranges.len() {
                assert!(
                    !ranges[i].overlaps(&ranges[j]),
                    "{:?} overlaps {:?}",
                    ranges[i],
                    ranges[j]
                );
            }
        }
    }

    #[test]
    fn catalog_sizes_match_scale() {
        let scale = TpchScale::new(0.2);
        let db = TpchDatabase::build(scale);
        for table in TpchTable::all() {
            let oid = db.table(table);
            assert_eq!(
                db.catalog.get(oid).unwrap().range.len,
                scale.table_blocks(table)
            );
        }
        for index in TpchIndex::all() {
            let oid = db.index(index);
            assert_eq!(
                db.catalog.get(oid).unwrap().range.len,
                scale.index_blocks(index)
            );
        }
        assert_eq!(db.catalog.data_blocks(), scale.total_blocks());
    }

    #[test]
    fn temp_region_is_big_enough_for_spills() {
        let db = TpchDatabase::build(TpchScale::new(0.05));
        assert!(db.catalog.temp_region().len >= 1024);
    }
}
