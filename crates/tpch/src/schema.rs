//! The TPC-H schema: tables, per-scale-factor cardinalities and row widths,
//! and the nine indexes the paper builds (Table 3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight TPC-H base tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TpchTable {
    /// `lineitem`: the fact table, ~6,000,000 rows per scale factor.
    Lineitem,
    /// `orders`: ~1,500,000 rows per scale factor.
    Orders,
    /// `partsupp`: ~800,000 rows per scale factor.
    Partsupp,
    /// `part`: ~200,000 rows per scale factor.
    Part,
    /// `customer`: ~150,000 rows per scale factor.
    Customer,
    /// `supplier`: ~10,000 rows per scale factor.
    Supplier,
    /// `nation`: 25 rows, scale-independent.
    Nation,
    /// `region`: 5 rows, scale-independent.
    Region,
}

impl TpchTable {
    /// All tables in layout order (largest first, like dbgen loads them).
    pub fn all() -> [TpchTable; 8] {
        [
            TpchTable::Lineitem,
            TpchTable::Orders,
            TpchTable::Partsupp,
            TpchTable::Part,
            TpchTable::Customer,
            TpchTable::Supplier,
            TpchTable::Nation,
            TpchTable::Region,
        ]
    }

    /// The table's SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            TpchTable::Lineitem => "lineitem",
            TpchTable::Orders => "orders",
            TpchTable::Partsupp => "partsupp",
            TpchTable::Part => "part",
            TpchTable::Customer => "customer",
            TpchTable::Supplier => "supplier",
            TpchTable::Nation => "nation",
            TpchTable::Region => "region",
        }
    }

    /// Number of rows at scale factor 1 (TPC-H specification, clause 4.2.5).
    pub fn rows_per_sf(&self) -> u64 {
        match self {
            TpchTable::Lineitem => 6_001_215,
            TpchTable::Orders => 1_500_000,
            TpchTable::Partsupp => 800_000,
            TpchTable::Part => 200_000,
            TpchTable::Customer => 150_000,
            TpchTable::Supplier => 10_000,
            TpchTable::Nation => 25,
            TpchTable::Region => 5,
        }
    }

    /// Whether the table's cardinality scales with the scale factor.
    pub fn scales(&self) -> bool {
        !matches!(self, TpchTable::Nation | TpchTable::Region)
    }

    /// Approximate on-disk row width in bytes (PostgreSQL heap tuples,
    /// including per-tuple overhead).
    pub fn row_bytes(&self) -> u64 {
        match self {
            TpchTable::Lineitem => 130,
            TpchTable::Orders => 120,
            TpchTable::Partsupp => 150,
            TpchTable::Part => 160,
            TpchTable::Customer => 180,
            TpchTable::Supplier => 150,
            TpchTable::Nation => 120,
            TpchTable::Region => 120,
        }
    }
}

impl fmt::Display for TpchTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The nine indexes of Table 3 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TpchIndex {
    /// `lineitem (l_partkey)`
    LineitemPartkey,
    /// `lineitem (l_orderkey)`
    LineitemOrderkey,
    /// `orders (o_orderkey)`
    OrdersOrderkey,
    /// `partsupp (ps_partkey)`
    PartsuppPartkey,
    /// `part (p_partkey)`
    PartPartkey,
    /// `customer (c_custkey)`
    CustomerCustkey,
    /// `supplier (s_suppkey)`
    SupplierSuppkey,
    /// `region (r_regionkey)`
    RegionRegionkey,
    /// `nation (n_nationkey)`
    NationNationkey,
}

impl TpchIndex {
    /// All nine indexes, in the order Table 3 lists them.
    pub fn all() -> [TpchIndex; 9] {
        [
            TpchIndex::LineitemPartkey,
            TpchIndex::LineitemOrderkey,
            TpchIndex::OrdersOrderkey,
            TpchIndex::PartsuppPartkey,
            TpchIndex::PartPartkey,
            TpchIndex::CustomerCustkey,
            TpchIndex::SupplierSuppkey,
            TpchIndex::RegionRegionkey,
            TpchIndex::NationNationkey,
        ]
    }

    /// The table the index is built on.
    pub fn table(&self) -> TpchTable {
        match self {
            TpchIndex::LineitemPartkey | TpchIndex::LineitemOrderkey => TpchTable::Lineitem,
            TpchIndex::OrdersOrderkey => TpchTable::Orders,
            TpchIndex::PartsuppPartkey => TpchTable::Partsupp,
            TpchIndex::PartPartkey => TpchTable::Part,
            TpchIndex::CustomerCustkey => TpchTable::Customer,
            TpchIndex::SupplierSuppkey => TpchTable::Supplier,
            TpchIndex::RegionRegionkey => TpchTable::Region,
            TpchIndex::NationNationkey => TpchTable::Nation,
        }
    }

    /// The index's name.
    pub fn name(&self) -> &'static str {
        match self {
            TpchIndex::LineitemPartkey => "idx_lineitem_l_partkey",
            TpchIndex::LineitemOrderkey => "idx_lineitem_l_orderkey",
            TpchIndex::OrdersOrderkey => "idx_orders_o_orderkey",
            TpchIndex::PartsuppPartkey => "idx_partsupp_ps_partkey",
            TpchIndex::PartPartkey => "idx_part_p_partkey",
            TpchIndex::CustomerCustkey => "idx_customer_c_custkey",
            TpchIndex::SupplierSuppkey => "idx_supplier_s_suppkey",
            TpchIndex::RegionRegionkey => "idx_region_r_regionkey",
            TpchIndex::NationNationkey => "idx_nation_n_nationkey",
        }
    }

    /// Approximate bytes per index entry (4-byte key B-tree in PostgreSQL,
    /// including item pointers and page overhead amortised per entry).
    pub fn entry_bytes(&self) -> u64 {
        24
    }
}

impl fmt::Display for TpchIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_tables_with_unique_names() {
        let names: std::collections::HashSet<_> =
            TpchTable::all().iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn nine_indexes_matching_table_3() {
        assert_eq!(TpchIndex::all().len(), 9);
        assert_eq!(TpchIndex::LineitemPartkey.table(), TpchTable::Lineitem);
        assert_eq!(TpchIndex::OrdersOrderkey.table(), TpchTable::Orders);
        assert_eq!(TpchIndex::NationNationkey.table(), TpchTable::Nation);
        let names: std::collections::HashSet<_> =
            TpchIndex::all().iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn cardinalities_follow_the_specification() {
        assert_eq!(TpchTable::Lineitem.rows_per_sf(), 6_001_215);
        assert_eq!(TpchTable::Orders.rows_per_sf(), 1_500_000);
        assert_eq!(TpchTable::Region.rows_per_sf(), 5);
        assert!(!TpchTable::Nation.scales());
        assert!(TpchTable::Lineitem.scales());
    }
}
