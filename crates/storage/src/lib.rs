//! Storage substrate for the hStorage-DB reproduction.
//!
//! This crate models everything *below* the DBMS storage manager:
//!
//! * a block-addressed storage space ([`block`]),
//! * I/O requests and their direction ([`request`]),
//! * the QoS policy vocabulary of the hybrid storage system — a set of
//!   caching priorities parameterised by `{N, t, b}` ([`policy`]),
//! * the Differentiated Storage Services request tagging ([`dss`]),
//! * simulated storage devices with calibrated service-time models:
//!   a 15K RPM enterprise HDD ([`hdd`]) and the Intel 320 SSD whose
//!   specification the paper lists in Table 2 ([`ssd`]),
//! * a virtual clock used to account simulated service time ([`clock`]),
//! * the TRIM command used to invalidate dead temporary data ([`trim`]).
//!
//! The paper runs on real hardware behind iSCSI; this crate substitutes a
//! discrete service-time simulation so the experiments are reproducible on
//! any machine. The device parameters are taken from the paper (Table 2 for
//! the SSD, Seagate Cheetah 15K.7 characteristics for the HDD) so the
//! *relative* behaviour of the four storage configurations is preserved.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod clock;
pub mod device;
pub mod dss;
pub mod hdd;
pub mod policy;
pub mod request;
pub mod ssd;
pub mod stats;
pub mod trim;

pub use block::{BlockAddr, BlockRange, BLOCK_SIZE};
pub use clock::SimClock;
pub use device::{DeviceKind, StorageDevice};
pub use dss::ClassifiedRequest;
pub use hdd::{HddDevice, HddParameters};
pub use policy::{CachePriority, PolicyConfig, QosPolicy};
pub use request::{Direction, IoRequest, RequestClass};
pub use ssd::{SsdDevice, SsdParameters};
pub use stats::DeviceStats;
pub use trim::TrimCommand;
