//! QoS policies of the hybrid storage system.
//!
//! Section 3.2 of the paper defines the QoS vocabulary of the two-level
//! hybrid storage prototype as a set of *caching priorities* described by a
//! 3-tuple `{N, t, b}`:
//!
//! * `N`  — total number of priorities; a smaller number is a *higher*
//!   priority (better chance of being cached),
//! * `t`  — the non-caching threshold: requests with priority `>= t` never
//!   cause cache allocation. The paper sets `t = N - 1`, yielding two
//!   non-caching priorities: `N - 1` ("non-caching and non-eviction") and
//!   `N` ("non-caching and eviction"),
//! * `b`  — fraction of the cache usable as a write buffer before a flush
//!   to the second level is forced.
//!
//! A request carries exactly one [`QosPolicy`]; the storage system maps it
//! to the priority of every block the request touches.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A caching priority. Priority 1 is the highest (most cache-worthy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CachePriority(pub u8);

impl CachePriority {
    /// The highest possible priority (used for temporary data, Rule 3).
    pub const HIGHEST: CachePriority = CachePriority(1);

    /// Whether this priority outranks (is more cache-worthy than) `other`.
    #[inline]
    pub fn outranks(self, other: CachePriority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for CachePriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The QoS policy attached to a single I/O request.
///
/// This is the high-level service abstraction the DBMS storage manager
/// speaks; the storage system translates it into cache admission/eviction
/// decisions (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QosPolicy {
    /// A caching priority in `[1, t)`: the accessed blocks compete for cache
    /// space at this priority.
    Priority(CachePriority),
    /// "Non-caching and non-eviction" (priority `N - 1`, Rule 1): blocks not
    /// already cached are *not* admitted; blocks already cached keep their
    /// previous priority untouched.
    NonCachingNonEviction,
    /// "Non-caching and eviction" (priority `N`, Rule 3 for TRIM/delete):
    /// blocks not cached are not admitted; blocks already cached are demoted
    /// so that they are evicted as soon as space is needed.
    NonCachingEviction,
    /// The write-buffer priority (Rule 4): the write wins cache space over
    /// any other priority; dirty data is flushed to the second level when
    /// the write-buffer share `b` is exceeded.
    WriteBuffer,
}

impl QosPolicy {
    /// Convenience constructor for a numbered priority.
    pub fn priority(p: u8) -> Self {
        QosPolicy::Priority(CachePriority(p))
    }

    /// Whether blocks accessed under this policy may be *admitted* into the
    /// cache when absent.
    pub fn admits(&self) -> bool {
        matches!(self, QosPolicy::Priority(_) | QosPolicy::WriteBuffer)
    }

    /// Whether this policy demotes already-cached blocks for prompt eviction.
    pub fn evicts(&self) -> bool {
        matches!(self, QosPolicy::NonCachingEviction)
    }
}

impl fmt::Display for QosPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosPolicy::Priority(p) => write!(f, "{p}"),
            QosPolicy::NonCachingNonEviction => write!(f, "non-caching/non-eviction"),
            QosPolicy::NonCachingEviction => write!(f, "non-caching/eviction"),
            QosPolicy::WriteBuffer => write!(f, "write-buffer"),
        }
    }
}

/// The `{N, t, b}` policy configuration of Section 3.2, plus the priority
/// range reserved for random requests (Rule 2, "priority range [n1, n2]").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Total number of priorities `N` (`N > 0`).
    pub total_priorities: u8,
    /// Non-caching threshold `t` (`0 <= t <= N`). Blocks with priority `>= t`
    /// are never admitted. The paper uses `t = N - 1`.
    pub non_caching_threshold: u8,
    /// Write-buffer share `b` of the cache capacity, `0.0 ..= 1.0`.
    /// The paper uses 10% for OLAP workloads.
    pub write_buffer_fraction: f64,
    /// Highest priority available to random requests (`n1`).
    pub random_range_high: u8,
    /// Lowest priority available to random requests (`n2 >= n1`).
    pub random_range_low: u8,
}

impl PolicyConfig {
    /// The configuration used throughout the paper's evaluation:
    /// Table 1 assigns priority 1 to temporary data, priorities `2..=N-2`
    /// to random requests, `N-1` to sequential requests and `N` to TRIM,
    /// with a 10% write buffer.
    pub fn paper_default() -> Self {
        let n = 8;
        PolicyConfig {
            total_priorities: n,
            non_caching_threshold: n - 1,
            write_buffer_fraction: 0.10,
            random_range_high: 2,
            random_range_low: n - 2,
        }
    }

    /// Creates a configuration with `n` priorities, `t = n - 1`, a random
    /// range `[2, n-2]`, and the given write-buffer fraction.
    pub fn with_priorities(n: u8, write_buffer_fraction: f64) -> Self {
        assert!(n >= 4, "need at least 4 priorities: temp, random, N-1, N");
        PolicyConfig {
            total_priorities: n,
            non_caching_threshold: n - 1,
            write_buffer_fraction,
            random_range_high: 2,
            random_range_low: n - 2,
        }
    }

    /// Validates the structural invariants of the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_priorities == 0 {
            return Err("N must be > 0".into());
        }
        if self.non_caching_threshold > self.total_priorities {
            return Err(format!(
                "t = {} must be <= N = {}",
                self.non_caching_threshold, self.total_priorities
            ));
        }
        if !(0.0..=1.0).contains(&self.write_buffer_fraction) {
            return Err("b must be in [0, 1]".into());
        }
        if self.random_range_high > self.random_range_low {
            return Err("random priority range must satisfy n1 <= n2".into());
        }
        if self.random_range_low >= self.non_caching_threshold {
            return Err("random priority range must stay below the non-caching threshold".into());
        }
        Ok(())
    }

    /// The "non-caching and non-eviction" priority (`N - 1`).
    pub fn non_caching_non_eviction(&self) -> CachePriority {
        CachePriority(self.total_priorities - 1)
    }

    /// The "non-caching and eviction" priority (`N`).
    pub fn non_caching_eviction(&self) -> CachePriority {
        CachePriority(self.total_priorities)
    }

    /// Size of the random-request priority range, `Cprio = n2 - n1`.
    pub fn random_range_size(&self) -> u8 {
        self.random_range_low - self.random_range_high
    }

    /// Resolves a [`QosPolicy`] to the concrete priority number used by the
    /// cache's priority groups. The write buffer is modelled as priority 0,
    /// which outranks every numbered priority — matching the paper's
    /// statement that an update request can "win" cache space over requests
    /// of any other priority.
    pub fn resolve(&self, policy: QosPolicy) -> CachePriority {
        match policy {
            QosPolicy::Priority(p) => p,
            QosPolicy::NonCachingNonEviction => self.non_caching_non_eviction(),
            QosPolicy::NonCachingEviction => self.non_caching_eviction(),
            QosPolicy::WriteBuffer => CachePriority(0),
        }
    }

    /// Whether the resolved priority is admissible into the cache
    /// (strictly below the non-caching threshold `t`).
    pub fn admissible(&self, prio: CachePriority) -> bool {
        prio.0 < self.non_caching_threshold
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_1() {
        let c = PolicyConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.non_caching_threshold, c.total_priorities - 1);
        assert_eq!(c.random_range_high, 2);
        assert_eq!(c.random_range_low, c.total_priorities - 2);
        assert!((c.write_buffer_fraction - 0.10).abs() < f64::EPSILON);
    }

    #[test]
    fn priority_ordering() {
        assert!(CachePriority(1).outranks(CachePriority(2)));
        assert!(!CachePriority(3).outranks(CachePriority(3)));
        assert!(!CachePriority(5).outranks(CachePriority(2)));
    }

    #[test]
    fn policy_admission_semantics() {
        assert!(QosPolicy::priority(2).admits());
        assert!(QosPolicy::WriteBuffer.admits());
        assert!(!QosPolicy::NonCachingNonEviction.admits());
        assert!(!QosPolicy::NonCachingEviction.admits());
        assert!(QosPolicy::NonCachingEviction.evicts());
        assert!(!QosPolicy::NonCachingNonEviction.evicts());
    }

    #[test]
    fn resolve_maps_special_policies() {
        let c = PolicyConfig::paper_default();
        assert_eq!(
            c.resolve(QosPolicy::NonCachingNonEviction),
            CachePriority(c.total_priorities - 1)
        );
        assert_eq!(
            c.resolve(QosPolicy::NonCachingEviction),
            CachePriority(c.total_priorities)
        );
        assert_eq!(c.resolve(QosPolicy::WriteBuffer), CachePriority(0));
        assert_eq!(c.resolve(QosPolicy::priority(3)), CachePriority(3));
    }

    #[test]
    fn admissibility_respects_threshold() {
        let c = PolicyConfig::paper_default();
        assert!(c.admissible(CachePriority(1)));
        assert!(c.admissible(CachePriority(c.non_caching_threshold - 1)));
        assert!(!c.admissible(CachePriority(c.non_caching_threshold)));
        assert!(!c.admissible(CachePriority(c.total_priorities)));
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = PolicyConfig::paper_default();
        c.non_caching_threshold = c.total_priorities + 1;
        assert!(c.validate().is_err());

        let mut c = PolicyConfig::paper_default();
        c.write_buffer_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = PolicyConfig::paper_default();
        c.random_range_high = c.random_range_low + 1;
        assert!(c.validate().is_err());

        let mut c = PolicyConfig::paper_default();
        c.random_range_low = c.non_caching_threshold;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_priorities_constructor() {
        let c = PolicyConfig::with_priorities(6, 0.2);
        assert!(c.validate().is_ok());
        assert_eq!(c.total_priorities, 6);
        assert_eq!(c.non_caching_threshold, 5);
        assert_eq!(c.random_range_low, 4);
    }
}
