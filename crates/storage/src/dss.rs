//! Differentiated Storage Services (DSS) request tagging.
//!
//! The DSS protocol (Mesnier et al., SOSP 2011) lets an I/O request carry a
//! classification in addition to its physical information, while remaining
//! backward compatible with plain block interfaces: a legacy storage system
//! simply ignores the tag.
//!
//! In this reproduction the "wire format" is the [`ClassifiedRequest`]
//! struct: the plain [`IoRequest`] plus the QoS policy and the request
//! class. Storage configurations that understand DSS (the hStorage-DB
//! hybrid cache) extract the policy; legacy configurations (HDD-only,
//! SSD-only, the LRU cache) look only at the embedded `IoRequest`.

use crate::policy::QosPolicy;
use crate::request::{IoRequest, RequestClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An I/O request together with the semantic classification and QoS policy
/// assigned by the DBMS storage manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedRequest {
    /// The physical request (block range, direction, sequentiality).
    pub io: IoRequest,
    /// The request class derived from semantic information (Section 4.1).
    pub class: RequestClass,
    /// The QoS policy assigned by the policy assignment table (Table 1).
    pub policy: QosPolicy,
}

impl ClassifiedRequest {
    /// Creates a classified request.
    pub fn new(io: IoRequest, class: RequestClass, policy: QosPolicy) -> Self {
        ClassifiedRequest { io, class, policy }
    }

    /// Backward compatibility: drops the classification, leaving the plain
    /// block-interface request a legacy storage system would see.
    pub fn into_legacy(self) -> IoRequest {
        self.io
    }

    /// Number of blocks touched by the request.
    pub fn blocks(&self) -> u64 {
        self.io.blocks()
    }
}

impl fmt::Display for ClassifiedRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} → {}]", self.io, self.class, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockRange;

    #[test]
    fn legacy_view_strips_classification() {
        let io = IoRequest::read(BlockRange::new(7u64, 3), false);
        let c = ClassifiedRequest::new(io, RequestClass::Random, QosPolicy::priority(2));
        assert_eq!(c.into_legacy(), io);
        assert_eq!(c.blocks(), 3);
    }

    #[test]
    fn display_includes_class_and_policy() {
        let io = IoRequest::write(BlockRange::new(0u64, 1), true);
        let c = ClassifiedRequest::new(io, RequestClass::Update, QosPolicy::WriteBuffer);
        let s = format!("{c}");
        assert!(s.contains("update"));
        assert!(s.contains("write-buffer"));
    }
}
