//! Per-device statistics.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters maintained by each simulated device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of read requests served.
    pub read_requests: u64,
    /// Number of write requests served.
    pub write_requests: u64,
    /// Blocks read.
    pub blocks_read: u64,
    /// Blocks written.
    pub blocks_written: u64,
    /// Requests served on the sequential path.
    pub sequential_requests: u64,
    /// Requests served on the random path.
    pub random_requests: u64,
    /// Total simulated service time spent in this device.
    pub busy_time: Duration,
}

impl DeviceStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total requests served.
    pub fn total_requests(&self) -> u64 {
        self.read_requests + self.write_requests
    }

    /// Total blocks transferred.
    pub fn total_blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }

    /// Merges another stats snapshot into this one.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.read_requests += other.read_requests;
        self.write_requests += other.write_requests;
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.sequential_requests += other.sequential_requests;
        self.random_requests += other.random_requests;
        self.busy_time += other.busy_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = DeviceStats {
            read_requests: 2,
            write_requests: 1,
            blocks_read: 20,
            blocks_written: 5,
            sequential_requests: 1,
            random_requests: 2,
            busy_time: Duration::from_millis(10),
        };
        let b = DeviceStats {
            read_requests: 3,
            write_requests: 0,
            blocks_read: 6,
            blocks_written: 0,
            sequential_requests: 3,
            random_requests: 0,
            busy_time: Duration::from_millis(5),
        };
        a.merge(&b);
        assert_eq!(a.total_requests(), 6);
        assert_eq!(a.total_blocks(), 31);
        assert_eq!(a.busy_time, Duration::from_millis(15));
    }
}
