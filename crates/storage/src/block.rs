//! Block addressing.
//!
//! The storage space is a flat array of fixed-size blocks. A [`BlockAddr`]
//! is a logical block number (LBN) as seen by the DBMS; the hybrid cache
//! internally remaps cached blocks to physical SSD block numbers (PBN), but
//! that mapping never leaves the storage system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one storage block in bytes.
///
/// The paper's DBMS is PostgreSQL, whose page size is 8 KiB; all block
/// counts in the evaluation are in this unit.
pub const BLOCK_SIZE: usize = 8 * 1024;

/// A logical block number in the storage address space exposed to the DBMS.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Returns the block address `n` blocks after this one.
    #[inline]
    pub fn offset(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }

    /// Byte offset of the start of this block.
    #[inline]
    pub fn byte_offset(self) -> u64 {
        self.0 * BLOCK_SIZE as u64
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lbn#{}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

/// A contiguous, half-open range of logical blocks `[start, start + len)`.
///
/// Ranges are the unit in which the physical layout assigns space to
/// tables, indexes and temporary files. The `Default` range is empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockRange {
    /// First block of the range.
    pub start: BlockAddr,
    /// Number of blocks in the range.
    pub len: u64,
}

impl BlockRange {
    /// Creates a new range starting at `start` containing `len` blocks.
    pub fn new(start: impl Into<BlockAddr>, len: u64) -> Self {
        BlockRange {
            start: start.into(),
            len,
        }
    }

    /// An empty range at address zero.
    pub fn empty() -> Self {
        BlockRange {
            start: BlockAddr(0),
            len: 0,
        }
    }

    /// Whether the range contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One-past-the-end block address.
    pub fn end(&self) -> BlockAddr {
        BlockAddr(self.start.0 + self.len)
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.len
    }

    /// Iterator over every block address in the range.
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        (self.start.0..self.start.0 + self.len).map(BlockAddr)
    }

    /// Total size of the range in bytes.
    pub fn bytes(&self) -> u64 {
        self.len * BLOCK_SIZE as u64
    }

    /// Splits the range in two at `at` blocks from the start.
    ///
    /// Returns `(first, second)` where `first` has `min(at, len)` blocks.
    pub fn split_at(&self, at: u64) -> (BlockRange, BlockRange) {
        let first_len = at.min(self.len);
        (
            BlockRange::new(self.start, first_len),
            BlockRange::new(self.start.offset(first_len), self.len - first_len),
        )
    }

    /// Whether two ranges overlap in at least one block.
    pub fn overlaps(&self, other: &BlockRange) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.start.0 < other.end().0 && other.start.0 < self.end().0
    }
}

impl fmt::Display for BlockRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start.0, self.start.0 + self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_offset_and_bytes() {
        let a = BlockAddr(10);
        assert_eq!(a.offset(5), BlockAddr(15));
        assert_eq!(a.byte_offset(), 10 * BLOCK_SIZE as u64);
    }

    #[test]
    fn range_contains_boundaries() {
        let r = BlockRange::new(100u64, 10);
        assert!(r.contains(BlockAddr(100)));
        assert!(r.contains(BlockAddr(109)));
        assert!(!r.contains(BlockAddr(110)));
        assert!(!r.contains(BlockAddr(99)));
    }

    #[test]
    fn range_end_and_bytes() {
        let r = BlockRange::new(4u64, 4);
        assert_eq!(r.end(), BlockAddr(8));
        assert_eq!(r.bytes(), 4 * BLOCK_SIZE as u64);
    }

    #[test]
    fn range_iter_yields_each_block() {
        let r = BlockRange::new(2u64, 3);
        let v: Vec<u64> = r.iter().map(|b| b.0).collect();
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn range_split_at_middle_and_past_end() {
        let r = BlockRange::new(0u64, 10);
        let (a, b) = r.split_at(4);
        assert_eq!(a.len, 4);
        assert_eq!(b.start, BlockAddr(4));
        assert_eq!(b.len, 6);

        let (a, b) = r.split_at(20);
        assert_eq!(a.len, 10);
        assert!(b.is_empty());
    }

    #[test]
    fn range_overlap() {
        let a = BlockRange::new(0u64, 10);
        let b = BlockRange::new(9u64, 5);
        let c = BlockRange::new(10u64, 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&BlockRange::empty()));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let e = BlockRange::empty();
        assert!(e.is_empty());
        assert!(!e.contains(BlockAddr(0)));
        assert_eq!(e.iter().count(), 0);
    }
}
