//! Hard disk drive model.
//!
//! The paper's second storage level is a Seagate Cheetah 15K.7 RPM 300 GB
//! enterprise disk. We model it with the classic decomposition of a disk
//! access: positioning time (average seek + rotational latency) for random
//! accesses, plus media transfer at the sequential bandwidth. Sequential
//! streams skip the positioning cost except on the first request of the
//! stream (tracked with a simple last-LBA heuristic).
//!
//! The headline characteristics this yields — ~150 MB/s sequential and a
//! few hundred IOPS random — are what make the paper's observations hold:
//! an SSD is barely better than the disk for sequential scans but 1–2
//! orders of magnitude better for random accesses.

use crate::block::{BlockAddr, BLOCK_SIZE};
use crate::clock::SimClock;
use crate::device::{record, DeviceKind, StorageDevice};
use crate::request::IoRequest;
use crate::stats::DeviceStats;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Tunable parameters of the HDD service-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HddParameters {
    /// Capacity in blocks.
    pub capacity_blocks: u64,
    /// Sustained sequential bandwidth in bytes/second (reads and writes).
    pub sequential_bandwidth: f64,
    /// Average seek time.
    pub avg_seek: Duration,
    /// Average rotational latency (half a revolution).
    pub avg_rotational_latency: Duration,
    /// Fixed per-request controller/command overhead.
    pub command_overhead: Duration,
    /// Maximum number of adjacent queued requests merged into one transfer
    /// by [`StorageDevice::serve_batch`]. Merging pays the positioning and
    /// command cost once per transfer instead of once per request. `1` (the
    /// default) disables merging.
    pub queue_depth: usize,
}

impl HddParameters {
    /// Seagate Cheetah 15K.7-like parameters (the drive used in the paper).
    ///
    /// 15 000 RPM ⇒ 2 ms average rotational latency; ~3.4 ms average seek;
    /// ~150 MB/s sustained transfer; 300 GB capacity.
    pub fn cheetah_15k7() -> Self {
        HddParameters {
            capacity_blocks: (300u64 * 1_000_000_000) / BLOCK_SIZE as u64,
            sequential_bandwidth: 150.0e6,
            avg_seek: Duration::from_micros(3_400),
            avg_rotational_latency: Duration::from_micros(2_000),
            command_overhead: Duration::from_micros(50),
            queue_depth: 1,
        }
    }

    /// Overrides the batched-service queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }
}

impl Default for HddParameters {
    fn default() -> Self {
        Self::cheetah_15k7()
    }
}

/// Mechanical state and counters, updated together under one lock so a
/// served request atomically records its traffic and moves the head.
#[derive(Debug, Default)]
struct HddState {
    stats: DeviceStats,
    /// Block address immediately after the last request served, used to
    /// detect physically contiguous accesses that avoid repositioning.
    next_contiguous: Option<BlockAddr>,
}

/// A simulated hard disk drive. Service accounting and head position are
/// interior-mutable so the device can be shared behind `&self`.
#[derive(Debug)]
pub struct HddDevice {
    params: HddParameters,
    clock: SimClock,
    state: Mutex<HddState>,
}

impl HddDevice {
    /// Creates an HDD with the given parameters sharing `clock`.
    pub fn new(params: HddParameters, clock: SimClock) -> Self {
        HddDevice {
            params,
            clock,
            state: Mutex::new(HddState::default()),
        }
    }

    /// Creates an HDD with paper-like parameters.
    pub fn cheetah(clock: SimClock) -> Self {
        Self::new(HddParameters::cheetah_15k7(), clock)
    }

    /// The model parameters.
    pub fn params(&self) -> &HddParameters {
        &self.params
    }

    fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.params.sequential_bandwidth)
    }

    fn positioning_time(&self) -> Duration {
        self.params.avg_seek + self.params.avg_rotational_latency
    }

    /// Service time given the current head position.
    fn service_time_at(&self, next_contiguous: Option<BlockAddr>, req: &IoRequest) -> Duration {
        let contiguous = next_contiguous == Some(req.range.start);
        let positioned = req.sequential && contiguous;
        let mut t = self.params.command_overhead + self.transfer_time(req.bytes());
        if !positioned {
            t += self.positioning_time();
        }
        t
    }
}

impl StorageDevice for HddDevice {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Hdd
    }

    fn capacity_blocks(&self) -> u64 {
        self.params.capacity_blocks
    }

    fn service_time(&self, req: &IoRequest) -> Duration {
        let next = self.state.lock().next_contiguous;
        self.service_time_at(next, req)
    }

    fn serve(&self, req: &IoRequest) -> Duration {
        let mut state = self.state.lock();
        let t = self.service_time_at(state.next_contiguous, req);
        state.next_contiguous = Some(req.range.end());
        record(&mut state.stats, req, t);
        drop(state);
        self.clock.advance(t);
        t
    }

    fn serve_batch(&self, reqs: &[IoRequest]) -> Duration {
        crate::device::serve_merged(reqs, self.params.queue_depth, |r| self.serve(r))
    }

    fn stats(&self) -> DeviceStats {
        self.state.lock().stats.clone()
    }

    fn reset_stats(&self) {
        self.state.lock().stats = DeviceStats::new();
    }

    fn idle_time(&self) -> Duration {
        self.clock
            .now()
            .saturating_sub(self.state.lock().stats.busy_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockRange;

    fn hdd() -> HddDevice {
        HddDevice::cheetah(SimClock::new())
    }

    #[test]
    fn random_access_pays_positioning() {
        let d = hdd();
        let seq = IoRequest::read(BlockRange::new(0u64, 1), true);
        let rand = IoRequest::read(BlockRange::new(1_000_000u64, 1), false);
        // Prime head position so the sequential request is contiguous.
        d.serve(&IoRequest::read(BlockRange::new(0u64, 0), true));
        let t_seq = d.service_time(&seq);
        let t_rand = d.service_time(&rand);
        assert!(t_rand > t_seq * 5, "random {t_rand:?} vs seq {t_seq:?}");
    }

    #[test]
    fn sequential_stream_runs_at_bandwidth() {
        let d = hdd();
        // 128 MiB sequential read as 1 MiB requests.
        let blocks_per_req = (1 << 20) / BLOCK_SIZE as u64;
        let mut addr = 0u64;
        for _ in 0..128 {
            d.serve(&IoRequest::read(
                BlockRange::new(addr, blocks_per_req),
                true,
            ));
            addr += blocks_per_req;
        }
        let secs = d.stats().busy_time.as_secs_f64();
        let bytes = 128.0 * (1 << 20) as f64;
        let bandwidth = bytes / secs;
        // Should be within ~20% of the configured sequential bandwidth
        // (one positioning event plus per-request overheads).
        assert!(
            bandwidth > 0.8 * d.params().sequential_bandwidth,
            "achieved {bandwidth} B/s"
        );
        assert!(bandwidth <= d.params().sequential_bandwidth);
    }

    #[test]
    fn random_iops_in_expected_range() {
        let d = hdd();
        for i in 0..100u64 {
            d.serve(&IoRequest::read(BlockRange::new(i * 100_000, 1), false));
        }
        let iops = 100.0 / d.stats().busy_time.as_secs_f64();
        // 15K RPM disks do roughly 150-250 random IOPS.
        assert!(iops > 100.0 && iops < 300.0, "iops = {iops}");
    }

    #[test]
    fn batched_adjacent_reads_pay_positioning_once() {
        let merged = HddDevice::new(
            HddParameters::cheetah_15k7().with_queue_depth(8),
            SimClock::new(),
        );
        let unmerged = hdd();
        let reqs: Vec<IoRequest> = (0..8u64)
            .map(|i| IoRequest::read(BlockRange::new(1_000 + i, 1), false))
            .collect();
        let t_merged = merged.serve_batch(&reqs);
        let t_unmerged = unmerged.serve_batch(&reqs);
        // One positioning + one command overhead instead of eight of each;
        // the media transfer time (8 blocks) is identical.
        assert_eq!(merged.stats().read_requests, 1);
        assert_eq!(merged.stats().blocks_read, 8);
        assert_eq!(unmerged.stats().read_requests, 8);
        let saved = 7
            * (merged.params().avg_seek
                + merged.params().avg_rotational_latency
                + merged.params().command_overhead);
        // Transfer time is rounded to nanoseconds per serve, so allow a
        // sub-microsecond slack between 8 small serves and 1 large one.
        let expected = t_merged + saved;
        let delta = if t_unmerged > expected {
            t_unmerged - expected
        } else {
            expected - t_unmerged
        };
        assert!(
            delta < Duration::from_micros(1),
            "{t_unmerged:?} vs {expected:?}"
        );
    }

    #[test]
    fn serve_advances_shared_clock() {
        let clock = SimClock::new();
        let d = HddDevice::cheetah(clock.clone());
        d.serve(&IoRequest::read(BlockRange::new(0u64, 16), false));
        assert!(clock.now() > Duration::ZERO);
        assert_eq!(clock.now(), d.stats().busy_time);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let d = hdd();
        d.serve(&IoRequest::write(BlockRange::new(0u64, 4), false));
        assert_eq!(d.stats().write_requests, 1);
        d.reset_stats();
        assert_eq!(d.stats(), DeviceStats::new());
    }
}
