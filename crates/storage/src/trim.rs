//! The TRIM command.
//!
//! Section 4.2.3: when a temporary file is deleted, the file system only
//! updates its metadata; the storage system never learns that the blocks
//! are dead, so stale temporary data would pin cache space at the highest
//! priority. The TRIM command (or, for legacy file systems, a sequential
//! scan of the file issued with the "non-caching and eviction" policy)
//! informs the storage system which LBA ranges have become useless so it
//! can evict them immediately.

use crate::block::BlockRange;
use serde::{Deserialize, Serialize};

/// A TRIM command covering one or more LBA ranges that have become useless.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrimCommand {
    /// Ranges whose contents are dead.
    pub ranges: Vec<BlockRange>,
}

impl TrimCommand {
    /// TRIM of a single range.
    pub fn single(range: BlockRange) -> Self {
        TrimCommand {
            ranges: vec![range],
        }
    }

    /// TRIM of several ranges.
    pub fn new(ranges: Vec<BlockRange>) -> Self {
        TrimCommand { ranges }
    }

    /// Total number of blocks trimmed.
    pub fn blocks(&self) -> u64 {
        self.ranges.iter().map(|r| r.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_blocks_across_ranges() {
        let t = TrimCommand::new(vec![BlockRange::new(0u64, 10), BlockRange::new(100u64, 5)]);
        assert_eq!(t.blocks(), 15);
        assert_eq!(TrimCommand::single(BlockRange::new(0u64, 1)).blocks(), 1);
    }
}
