//! Simulated time.
//!
//! All device service times are accounted against a [`SimClock`]. The clock
//! only ever moves forward; experiments read it before and after a workload
//! to obtain the simulated elapsed time that stands in for the wall-clock
//! execution times the paper reports.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing virtual clock, shared between the devices of
/// one simulated storage system.
///
/// The clock is cheap to clone; clones share the same underlying counter.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<Mutex<u128>>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        let n = *self.nanos.lock();
        duration_from_nanos(n)
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: Duration) -> Duration {
        let mut n = self.nanos.lock();
        *n += d.as_nanos();
        duration_from_nanos(*n)
    }

    /// Advances the clock by a number of nanoseconds.
    pub fn advance_nanos(&self, nanos: u64) -> Duration {
        self.advance(Duration::from_nanos(nanos))
    }

    /// Resets the clock to zero. Used between independent experiment runs.
    pub fn reset(&self) {
        *self.nanos.lock() = 0;
    }
}

fn duration_from_nanos(n: u128) -> Duration {
    // Duration::from_nanos takes u64; virtual experiments stay far below
    // u64::MAX nanoseconds (~584 years), but saturate defensively.
    Duration::from_nanos(u64::try_from(n).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        c.advance(Duration::from_millis(5));
        c.advance(Duration::from_micros(250));
        assert_eq!(c.now(), Duration::from_micros(5250));
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(Duration::from_secs(1));
        assert_eq!(c2.now(), Duration::from_secs(1));
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(3));
        c.reset();
        assert_eq!(c.now(), Duration::ZERO);
    }
}
