//! Simulated time.
//!
//! All device service times are accounted against a [`SimClock`]. The clock
//! only ever moves forward; experiments read it before and after a workload
//! to obtain the simulated elapsed time that stands in for the wall-clock
//! execution times the paper reports.
//!
//! The clock sits on the hot path of every request, shared by every device
//! of a storage system and — with the threaded workload driver — by every
//! executing stream, so it is lock-free: a single `AtomicU64` advanced with
//! `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing virtual clock, shared between the devices of
/// one simulated storage system.
///
/// The clock is cheap to clone; clones share the same underlying counter.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d` and returns the new time.
    ///
    /// Saturates at `u64::MAX` nanoseconds (~584 years of virtual time)
    /// instead of wrapping, preserving the semantics of the earlier
    /// `u128`-based implementation.
    pub fn advance(&self, d: Duration) -> Duration {
        let delta = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.nanos.fetch_add(delta, Ordering::Relaxed);
        match prev.checked_add(delta) {
            Some(new) => Duration::from_nanos(new),
            None => {
                // The counter wrapped; clamp it back to the saturation
                // point. Concurrent advances may briefly observe the wrapped
                // value, but every path through here restores the maximum.
                self.nanos.store(u64::MAX, Ordering::Relaxed);
                Duration::from_nanos(u64::MAX)
            }
        }
    }

    /// Advances the clock by a number of nanoseconds.
    pub fn advance_nanos(&self, nanos: u64) -> Duration {
        self.advance(Duration::from_nanos(nanos))
    }

    /// Resets the clock to zero. Used between independent experiment runs.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        c.advance(Duration::from_millis(5));
        c.advance(Duration::from_micros(250));
        assert_eq!(c.now(), Duration::from_micros(5250));
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(Duration::from_secs(1));
        assert_eq!(c2.now(), Duration::from_secs(1));
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(3));
        c.reset();
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let c = SimClock::new();
        c.advance(Duration::from_nanos(u64::MAX - 10));
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_nanos(u64::MAX));
        // Further advances stay pinned at the maximum.
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn concurrent_advances_sum_exactly() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.advance_nanos(3);
                    }
                });
            }
        });
        assert_eq!(c.now(), Duration::from_nanos(4 * 10_000 * 3));
    }
}
