//! Solid-state drive model.
//!
//! The cache device in the paper is an Intel 320 Series 300 GB SSD, whose
//! key specification is given in Table 2:
//!
//! | Sequential Read / Write | Random Read / Write |
//! |---|---|
//! | 270 MB/s / 205 MB/s | 39.5 K IOPS / 23 K IOPS |
//!
//! The model charges sequential requests at the sequential bandwidth and
//! random requests per block at the rated IOPS (Table 2 IOPS are 4 KiB;
//! we conservatively charge one IO per 8 KiB database block).

use crate::block::BLOCK_SIZE;
use crate::clock::SimClock;
use crate::device::{record, DeviceKind, StorageDevice};
use crate::request::{Direction, IoRequest};
use crate::stats::DeviceStats;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Tunable parameters of the SSD service-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdParameters {
    /// Capacity in blocks.
    pub capacity_blocks: u64,
    /// Sequential read bandwidth, bytes/second.
    pub sequential_read_bandwidth: f64,
    /// Sequential write bandwidth, bytes/second.
    pub sequential_write_bandwidth: f64,
    /// Random read throughput in IO operations per second.
    pub random_read_iops: f64,
    /// Random write throughput in IO operations per second.
    pub random_write_iops: f64,
    /// Fixed per-request command overhead.
    pub command_overhead: Duration,
    /// Maximum number of adjacent queued requests merged into one transfer
    /// by [`StorageDevice::serve_batch`]. `1` (the default) disables
    /// merging, so batched service is identical to per-request service.
    pub queue_depth: usize,
}

impl SsdParameters {
    /// The Intel 320 Series 300 GB specification from Table 2 of the paper.
    pub fn intel_320() -> Self {
        SsdParameters {
            capacity_blocks: (300u64 * 1_000_000_000) / BLOCK_SIZE as u64,
            sequential_read_bandwidth: 270.0e6,
            sequential_write_bandwidth: 205.0e6,
            random_read_iops: 39_500.0,
            random_write_iops: 23_000.0,
            command_overhead: Duration::from_micros(20),
            queue_depth: 1,
        }
    }

    /// Overrides the batched-service queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }
}

impl Default for SsdParameters {
    fn default() -> Self {
        Self::intel_320()
    }
}

/// A simulated solid-state drive. Statistics are interior-mutable so the
/// device can be shared behind `&self` by concurrent callers.
#[derive(Debug)]
pub struct SsdDevice {
    params: SsdParameters,
    clock: SimClock,
    stats: Mutex<DeviceStats>,
}

impl SsdDevice {
    /// Creates an SSD with the given parameters sharing `clock`.
    pub fn new(params: SsdParameters, clock: SimClock) -> Self {
        SsdDevice {
            params,
            clock,
            stats: Mutex::new(DeviceStats::new()),
        }
    }

    /// Creates an SSD with the Intel 320 parameters of Table 2.
    pub fn intel_320(clock: SimClock) -> Self {
        Self::new(SsdParameters::intel_320(), clock)
    }

    /// The model parameters.
    pub fn params(&self) -> &SsdParameters {
        &self.params
    }
}

impl StorageDevice for SsdDevice {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Ssd
    }

    fn capacity_blocks(&self) -> u64 {
        self.params.capacity_blocks
    }

    fn service_time(&self, req: &IoRequest) -> Duration {
        let t = if req.sequential {
            let bw = match req.direction {
                Direction::Read => self.params.sequential_read_bandwidth,
                Direction::Write => self.params.sequential_write_bandwidth,
            };
            Duration::from_secs_f64(req.bytes() as f64 / bw)
        } else {
            let iops = match req.direction {
                Direction::Read => self.params.random_read_iops,
                Direction::Write => self.params.random_write_iops,
            };
            Duration::from_secs_f64(req.blocks() as f64 / iops)
        };
        t + self.params.command_overhead
    }

    fn serve(&self, req: &IoRequest) -> Duration {
        let t = self.service_time(req);
        self.clock.advance(t);
        record(&mut self.stats.lock(), req, t);
        t
    }

    fn serve_batch(&self, reqs: &[IoRequest]) -> Duration {
        crate::device::serve_merged(reqs, self.params.queue_depth, |r| self.serve(r))
    }

    fn stats(&self) -> DeviceStats {
        self.stats.lock().clone()
    }

    fn reset_stats(&self) {
        *self.stats.lock() = DeviceStats::new();
    }

    fn idle_time(&self) -> Duration {
        self.clock.now().saturating_sub(self.stats.lock().busy_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockRange;
    use crate::hdd::HddDevice;

    fn ssd() -> SsdDevice {
        SsdDevice::intel_320(SimClock::new())
    }

    #[test]
    fn random_read_latency_matches_iops() {
        let d = ssd();
        let t = d.service_time(&IoRequest::read(BlockRange::new(0u64, 1), false));
        let expected = Duration::from_secs_f64(1.0 / 39_500.0);
        assert!(t >= expected);
        assert!(t < expected + Duration::from_micros(100));
    }

    #[test]
    fn random_writes_slower_than_random_reads() {
        let d = ssd();
        let r = d.service_time(&IoRequest::read(BlockRange::new(0u64, 64), false));
        let w = d.service_time(&IoRequest::write(BlockRange::new(0u64, 64), false));
        assert!(w > r);
    }

    #[test]
    fn sequential_read_faster_than_sequential_write() {
        let d = ssd();
        let blocks = (64 << 20) / BLOCK_SIZE as u64;
        let r = d.service_time(&IoRequest::read(BlockRange::new(0u64, blocks), true));
        let w = d.service_time(&IoRequest::write(BlockRange::new(0u64, blocks), true));
        assert!(r < w);
    }

    #[test]
    fn ssd_dominates_hdd_for_random_but_not_sequential() {
        // This is the central device-level premise of the paper (Section
        // 4.2.1): HDD sequential performance is comparable to the SSD, but
        // random performance is far worse.
        let clock = SimClock::new();
        let ssd = SsdDevice::intel_320(clock.clone());
        let hdd = HddDevice::cheetah(clock);

        let seq = IoRequest::read(BlockRange::new(0u64, (8 << 20) / BLOCK_SIZE as u64), true);
        let ssd_seq = ssd.service_time(&seq);
        let hdd_seq = hdd.service_time(&seq);
        assert!(hdd_seq < ssd_seq * 4, "HDD sequential should be comparable");

        let rand = IoRequest::read(BlockRange::new(123_456u64, 1), false);
        let ssd_rand = ssd.service_time(&rand);
        let hdd_rand = hdd.service_time(&rand);
        assert!(
            hdd_rand > ssd_rand * 20,
            "HDD random should be far slower: {hdd_rand:?} vs {ssd_rand:?}"
        );
    }

    #[test]
    fn serve_accumulates_stats_and_clock() {
        let clock = SimClock::new();
        let d = SsdDevice::intel_320(clock.clone());
        d.serve(&IoRequest::read(BlockRange::new(0u64, 2), false));
        d.serve(&IoRequest::write(BlockRange::new(2u64, 2), true));
        let s = d.stats();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.total_blocks(), 4);
        assert_eq!(clock.now(), s.busy_time);
    }

    #[test]
    fn batched_adjacent_requests_merge_within_queue_depth() {
        let d = SsdDevice::new(
            SsdParameters::intel_320().with_queue_depth(4),
            SimClock::new(),
        );
        let reqs: Vec<IoRequest> = (0..8u64)
            .map(|i| IoRequest::read(BlockRange::new(i, 1), false))
            .collect();
        let t = d.serve_batch(&reqs);
        let s = d.stats();
        // Eight adjacent single-block reads at queue depth 4 become two
        // 4-block transfers: per-block IOPS cost retained, command overhead
        // paid twice instead of eight times.
        assert_eq!(s.read_requests, 2);
        assert_eq!(s.blocks_read, 8);
        let expected = Duration::from_secs_f64(8.0 / 39_500.0) + 2 * Duration::from_micros(20);
        let delta = if t > expected {
            t - expected
        } else {
            expected - t
        };
        assert!(delta < Duration::from_micros(1), "{t:?} vs {expected:?}");
    }

    #[test]
    fn queue_depth_one_batch_is_identical_to_individual_serves() {
        let batched = ssd();
        let single = ssd();
        let reqs: Vec<IoRequest> = (0..6u64)
            .map(|i| IoRequest::read(BlockRange::new(i, 1), false))
            .collect();
        let t_batch = batched.serve_batch(&reqs);
        let t_single: Duration = reqs.iter().map(|r| single.serve(r)).sum();
        assert_eq!(t_batch, t_single);
        assert_eq!(batched.stats(), single.stats());
    }

    #[test]
    fn non_adjacent_and_mixed_direction_requests_do_not_merge() {
        let d = SsdDevice::new(
            SsdParameters::intel_320().with_queue_depth(32),
            SimClock::new(),
        );
        d.serve_batch(&[
            IoRequest::read(BlockRange::new(0u64, 1), false),
            IoRequest::read(BlockRange::new(100u64, 1), false), // gap
            IoRequest::write(BlockRange::new(101u64, 1), false), // direction flip
        ]);
        let s = d.stats();
        assert_eq!(s.read_requests, 2);
        assert_eq!(s.write_requests, 1);
    }

    #[test]
    fn shared_device_serves_concurrently() {
        let clock = SimClock::new();
        let d = SsdDevice::intel_320(clock);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let d = &d;
                s.spawn(move || {
                    for i in 0..100u64 {
                        d.serve(&IoRequest::read(BlockRange::new(t * 1_000 + i, 1), false));
                    }
                });
            }
        });
        let s = d.stats();
        assert_eq!(s.read_requests, 400);
        assert_eq!(s.blocks_read, 400);
    }
}
