//! I/O requests as issued by the DBMS storage manager.
//!
//! A request is the physical-layout view of a data access: a contiguous
//! range of logical blocks, a direction, and (in hStorage-DB) the request
//! class derived from semantic information. The storage manager attaches a
//! QoS policy to the request via the [`crate::dss`] layer.

use crate::block::BlockRange;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

impl Direction {
    /// `true` for writes.
    pub fn is_write(self) -> bool {
        matches!(self, Direction::Write)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Read => write!(f, "read"),
            Direction::Write => write!(f, "write"),
        }
    }
}

/// The request classes of Section 4.1.
///
/// Classification is performed by the DBMS storage manager from semantic
/// information; the storage system itself never needs to re-derive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RequestClass {
    /// Sequential requests (table scans). Rule 1.
    Sequential,
    /// Random requests (index scans and index-driven table accesses). Rule 2.
    Random,
    /// Reads and writes of temporary data during its lifetime. Rule 3.
    TemporaryData,
    /// The deletion/TRIM of temporary data at the end of its lifetime. Rule 3.
    TemporaryDataTrim,
    /// Update (write) requests from the application. Rule 4.
    Update,
}

impl RequestClass {
    /// Short label used by the Figure-4 style diversity reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Sequential => "sequential",
            RequestClass::Random => "random",
            RequestClass::TemporaryData => "temporary",
            RequestClass::TemporaryDataTrim => "temp-trim",
            RequestClass::Update => "update",
        }
    }

    /// All classes, in reporting order.
    pub fn all() -> [RequestClass; 5] {
        [
            RequestClass::Sequential,
            RequestClass::Random,
            RequestClass::TemporaryData,
            RequestClass::TemporaryDataTrim,
            RequestClass::Update,
        ]
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single block-level I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// The contiguous blocks touched by the request.
    pub range: BlockRange,
    /// Read or write.
    pub direction: Direction,
    /// Whether the request is part of a sequential stream (consecutive to
    /// the previous request of the same stream). Devices use this to decide
    /// between sequential-bandwidth and random-IOPS service time.
    pub sequential: bool,
}

impl IoRequest {
    /// Creates a read request.
    pub fn read(range: BlockRange, sequential: bool) -> Self {
        IoRequest {
            range,
            direction: Direction::Read,
            sequential,
        }
    }

    /// Creates a write request.
    pub fn write(range: BlockRange, sequential: bool) -> Self {
        IoRequest {
            range,
            direction: Direction::Write,
            sequential,
        }
    }

    /// Number of blocks touched.
    pub fn blocks(&self) -> u64 {
        self.range.len
    }

    /// Number of bytes touched.
    pub fn bytes(&self) -> u64 {
        self.range.bytes()
    }
}

impl fmt::Display for IoRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({} blocks, {})",
            self.direction,
            self.range,
            self.blocks(),
            if self.sequential { "seq" } else { "rand" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockRange, BLOCK_SIZE};

    #[test]
    fn read_and_write_constructors() {
        let r = IoRequest::read(BlockRange::new(0u64, 8), true);
        assert_eq!(r.direction, Direction::Read);
        assert!(r.sequential);
        assert_eq!(r.blocks(), 8);
        assert_eq!(r.bytes(), 8 * BLOCK_SIZE as u64);

        let w = IoRequest::write(BlockRange::new(8u64, 1), false);
        assert!(w.direction.is_write());
        assert!(!w.sequential);
    }

    #[test]
    fn class_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            RequestClass::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), RequestClass::all().len());
    }
}
