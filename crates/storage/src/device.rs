//! The device abstraction shared by the HDD and SSD models.
//!
//! A device computes a *service time* for each request from its performance
//! model, advances the shared [`SimClock`](crate::clock::SimClock) by that
//! amount, and updates its counters. Devices do not store data contents —
//! the experiments only depend on timing and on block identity, which the
//! cache layer tracks.
//!
//! Devices are served through `&self`: service accounting is interior-
//! mutable so one device instance can be shared by the concurrent shards of
//! a storage system (and by the threaded workload driver) without an
//! exclusive borrow.

use crate::request::IoRequest;
use crate::stats::DeviceStats;
use std::time::Duration;

/// Which kind of device a model represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Hard disk drive (second level of the hybrid hierarchy).
    Hdd,
    /// Solid-state drive (first level / cache device).
    Ssd,
}

/// A simulated block device.
pub trait StorageDevice: Send + Sync {
    /// The kind of device.
    fn kind(&self) -> DeviceKind;

    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Computes the service time of `req` *without* advancing the clock or
    /// updating statistics. Pure function of the model and internal head
    /// state; used by tests and by the cache to reason about costs.
    fn service_time(&self, req: &IoRequest) -> Duration;

    /// Serves the request: computes the service time, advances the shared
    /// clock, updates statistics, and returns the service time.
    fn serve(&self, req: &IoRequest) -> Duration;

    /// Snapshot of the device statistics.
    fn stats(&self) -> DeviceStats;

    /// Clears statistics (does not reset mechanical state).
    fn reset_stats(&self);
}

/// Records a served request into `stats`.
pub(crate) fn record(stats: &mut DeviceStats, req: &IoRequest, service: Duration) {
    match req.direction {
        crate::request::Direction::Read => {
            stats.read_requests += 1;
            stats.blocks_read += req.blocks();
        }
        crate::request::Direction::Write => {
            stats.write_requests += 1;
            stats.blocks_written += req.blocks();
        }
    }
    if req.sequential {
        stats.sequential_requests += 1;
    } else {
        stats.random_requests += 1;
    }
    stats.busy_time += service;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockRange;
    use crate::request::IoRequest;

    #[test]
    fn record_updates_counters() {
        let mut s = DeviceStats::new();
        record(
            &mut s,
            &IoRequest::read(BlockRange::new(0u64, 4), true),
            Duration::from_micros(100),
        );
        record(
            &mut s,
            &IoRequest::write(BlockRange::new(4u64, 2), false),
            Duration::from_micros(50),
        );
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.blocks_read, 4);
        assert_eq!(s.blocks_written, 2);
        assert_eq!(s.sequential_requests, 1);
        assert_eq!(s.random_requests, 1);
        assert_eq!(s.busy_time, Duration::from_micros(150));
    }
}
