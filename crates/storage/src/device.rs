//! The device abstraction shared by the HDD and SSD models.
//!
//! A device computes a *service time* for each request from its performance
//! model, advances the shared [`SimClock`](crate::clock::SimClock) by that
//! amount, and updates its counters. Devices do not store data contents —
//! the experiments only depend on timing and on block identity, which the
//! cache layer tracks.
//!
//! Devices are served through `&self`: service accounting is interior-
//! mutable so one device instance can be shared by the concurrent shards of
//! a storage system (and by the threaded workload driver) without an
//! exclusive borrow.

use crate::request::IoRequest;
use crate::stats::DeviceStats;
use std::time::Duration;

/// Which kind of device a model represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Hard disk drive (second level of the hybrid hierarchy).
    Hdd,
    /// Solid-state drive (first level / cache device).
    Ssd,
}

/// A simulated block device.
pub trait StorageDevice: Send + Sync {
    /// The kind of device.
    fn kind(&self) -> DeviceKind;

    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Computes the service time of `req` *without* advancing the clock or
    /// updating statistics. Pure function of the model and internal head
    /// state; used by tests and by the cache to reason about costs.
    fn service_time(&self, req: &IoRequest) -> Duration;

    /// Serves the request: computes the service time, advances the shared
    /// clock, updates statistics, and returns the service time.
    fn serve(&self, req: &IoRequest) -> Duration;

    /// Serves a queue of requests, returning the total service time.
    ///
    /// The default implementation serves each request individually. Device
    /// models with a command queue override this to merge physically
    /// adjacent same-direction requests into one transfer — the per-request
    /// setup cost (command overhead, and positioning on the HDD) is then
    /// paid once per merged transfer while the per-block transfer cost is
    /// retained. How many requests may merge into one transfer is bounded
    /// by the device's queue-depth parameter.
    fn serve_batch(&self, reqs: &[IoRequest]) -> Duration {
        reqs.iter().map(|r| self.serve(r)).sum()
    }

    /// Snapshot of the device statistics.
    fn stats(&self) -> DeviceStats;

    /// Clears statistics (does not reset mechanical state).
    fn reset_stats(&self);

    /// Simulated time this device has spent idle: the shared clock's
    /// current reading minus the device's accumulated busy time. In the
    /// serialized simulation the clock only advances while *some* device
    /// serves, so a device's idle time grows exactly while another device
    /// is busy — the window background work (tier migration) steals.
    /// Note that [`StorageDevice::reset_stats`] clears busy time but not
    /// the clock, so idle time jumps forward across a reset.
    fn idle_time(&self) -> Duration;
}

/// Coalesces a queue of requests into merged transfers and serves each via
/// `serve`, returning the total service time.
///
/// Consecutive requests merge while they have the same direction and
/// sequential flag, are physically adjacent (`prev.range.end() ==
/// next.range.start`) and fewer than `queue_depth` original requests have
/// been folded into the pending transfer. `queue_depth <= 1` disables
/// merging, making the batch equivalent to serving each request alone.
pub(crate) fn serve_merged(
    reqs: &[IoRequest],
    queue_depth: usize,
    mut serve: impl FnMut(&IoRequest) -> Duration,
) -> Duration {
    let mut total = Duration::ZERO;
    let mut pending: Option<(IoRequest, usize)> = None;
    for req in reqs {
        match pending.as_mut() {
            Some((merged, count))
                if queue_depth > 1
                    && *count < queue_depth
                    && merged.direction == req.direction
                    && merged.sequential == req.sequential
                    && merged.range.end() == req.range.start =>
            {
                merged.range.len += req.range.len;
                *count += 1;
            }
            _ => {
                if let Some((merged, _)) = pending.take() {
                    total += serve(&merged);
                }
                pending = Some((*req, 1));
            }
        }
    }
    if let Some((merged, _)) = pending.take() {
        total += serve(&merged);
    }
    total
}

/// Records a served request into `stats`.
pub(crate) fn record(stats: &mut DeviceStats, req: &IoRequest, service: Duration) {
    match req.direction {
        crate::request::Direction::Read => {
            stats.read_requests += 1;
            stats.blocks_read += req.blocks();
        }
        crate::request::Direction::Write => {
            stats.write_requests += 1;
            stats.blocks_written += req.blocks();
        }
    }
    if req.sequential {
        stats.sequential_requests += 1;
    } else {
        stats.random_requests += 1;
    }
    stats.busy_time += service;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockRange;
    use crate::request::IoRequest;

    #[test]
    fn record_updates_counters() {
        let mut s = DeviceStats::new();
        record(
            &mut s,
            &IoRequest::read(BlockRange::new(0u64, 4), true),
            Duration::from_micros(100),
        );
        record(
            &mut s,
            &IoRequest::write(BlockRange::new(4u64, 2), false),
            Duration::from_micros(50),
        );
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.blocks_read, 4);
        assert_eq!(s.blocks_written, 2);
        assert_eq!(s.sequential_requests, 1);
        assert_eq!(s.random_requests, 1);
        assert_eq!(s.busy_time, Duration::from_micros(150));
    }
}
