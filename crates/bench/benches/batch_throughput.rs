//! Vectored-submission throughput (not a paper figure): submits/second
//! through one `HybridCache` as a function of the batch size handed to
//! `StorageSystem::submit_batch`, swept over batch sizes 1, 8, 64 and 256.
//!
//! Two request shapes are measured (shared with the `bench_gate` CI binary
//! via `hstorage_bench::workload`, so the gate guards exactly this
//! workload):
//!
//! * `scan` — adjacent single-block sequential reads (the shape a table
//!   scan produces). Batching wins twice here: each shard lock is taken
//!   once per batch, and the device merges adjacent transfers up to the
//!   queue depth, so the per-request seek/command setup is paid once per
//!   merged transfer.
//! * `random` — scattered single-block random reads. No transfers merge,
//!   so the measured gain isolates the shard-grouped locking.
//!
//! Batch size 1 degenerates to the per-request `submit` path and is the
//! PR 2 baseline shape (~2.3–2.8 ms per 10k submits on the reference
//! machine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hstorage_bench::workload::{
    drive, fresh_cache, random_read, scan_read, QUEUE_DEPTH, TOTAL_SUBMITS,
};
use std::hint::black_box;

fn bench_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group.throughput(Throughput::Elements(TOTAL_SUBMITS));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for batch in [1usize, 8, 64, 256] {
        group.bench_with_input(BenchmarkId::new("scan", batch), &batch, |b, &batch| {
            b.iter(|| black_box(drive(&fresh_cache(QUEUE_DEPTH), batch, scan_read)));
        });
        group.bench_with_input(BenchmarkId::new("random", batch), &batch, |b, &batch| {
            b.iter(|| black_box(drive(&fresh_cache(QUEUE_DEPTH), batch, random_read)));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_batches);
criterion_main!(benches);
