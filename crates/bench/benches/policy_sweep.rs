//! Cache-policy sweep (not a paper figure): submits/second through one
//! cache engine as a function of the replacement policy driving it, on the
//! mixed workload shared with the `bench_gate` CI binary
//! (`hstorage_bench::workload::mixed_request` — random reuse, scan
//! pollution, buffered updates and temporary data, so admission, eviction
//! and promotion all fire).
//!
//! Two things are visible here:
//!
//! * the *wall-clock* cost of each policy's bookkeeping (the semantic
//!   policy pays per-priority groups, CFLRU pays the clean-first window
//!   scan, 2Q pays ghost-list maintenance) on the identical engine;
//! * via the `sim:` rows the gate derives from the same workload, the
//!   *simulated device time* each policy produces — the figure of merit
//!   the policy-comparison experiment reports at the query level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hstorage_bench::workload::{
    drive, fresh_policy_cache, mixed_request, QUEUE_DEPTH, TOTAL_SUBMITS,
};
use hstorage_cache::CachePolicyKind;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_sweep");
    group.throughput(Throughput::Elements(TOTAL_SUBMITS));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for kind in CachePolicyKind::all() {
        for batch in [1usize, 64] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), batch),
                &batch,
                |b, &batch| {
                    b.iter(|| {
                        black_box(drive(
                            &fresh_policy_cache(kind, QUEUE_DEPTH),
                            batch,
                            mixed_request,
                        ))
                    });
                },
            );
        }
    }

    group.finish();
}

/// Knob sweep over the tunable policies: the same mixed workload under
/// off-default CFLRU windows and 2Q `Kin`/`Kout` fractions, so the
/// wall-clock cost of a knob (a wider clean-first scan, a larger ghost
/// directory) is visible next to the defaults above. The *simulated*
/// effect of the same knobs at the query level is what the
/// `policy_ablation` experiment reports.
fn bench_policy_knobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_knob_sweep");
    group.throughput(Throughput::Elements(TOTAL_SUBMITS));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let variants = [
        ("cflru-window5", CachePolicyKind::Cflru { window_pct: 5 }),
        ("cflru-window75", CachePolicyKind::Cflru { window_pct: 75 }),
        (
            "2q-kin10",
            CachePolicyKind::TwoQ {
                kin_pct: 10,
                kout_pct: 50,
            },
        ),
        (
            "2q-kin50",
            CachePolicyKind::TwoQ {
                kin_pct: 50,
                kout_pct: 50,
            },
        ),
        (
            "2q-kout150",
            CachePolicyKind::TwoQ {
                kin_pct: 25,
                kout_pct: 150,
            },
        ),
    ];
    for (label, kind) in variants {
        group.bench_function(BenchmarkId::new(label, 64), |b| {
            b.iter(|| {
                black_box(drive(
                    &fresh_policy_cache(kind, QUEUE_DEPTH),
                    64,
                    mixed_request,
                ))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_policies, bench_policy_knobs);
criterion_main!(benches);
