//! Figure 4: request-type diversity across the 22 TPC-H queries.
//!
//! The measured quantity is the wall-clock cost of classifying and running
//! the full query set once; the generated report (request/block fractions
//! per class) is the reproduction of Figure 4a/4b.

use criterion::{criterion_group, criterion_main, Criterion};
use hstorage::experiments::fig4;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let scale = hstorage_bench::bench_scale();
    let mut group = c.benchmark_group("fig4_diversity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("all_22_queries", |b| {
        b.iter(|| black_box(fig4::run(black_box(scale))));
    });
    group.finish();

    // Print the reproduced figure once so `cargo bench` output contains the
    // rows the paper reports.
    let report = fig4::run(scale);
    println!("\n{report}\n");
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
