//! Figure 11 and Table 8: the power-test query sequence under HDD-only,
//! hStorage-DB and SSD-only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hstorage::experiments::fig11;
use hstorage::{SystemConfig, TpchSystem};
use hstorage_tpch::power::power_test_sequence;
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let scale = hstorage_bench::bench_scale();
    let sequence = power_test_sequence();
    let mut group = c.benchmark_group("fig11_power_test");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in fig11::POWER_TEST_CONFIGS {
        group.bench_with_input(
            BenchmarkId::new("sequence", kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut system = TpchSystem::new(SystemConfig::single_query(scale, kind));
                    black_box(system.run_sequence(&sequence))
                });
            },
        );
    }
    group.finish();

    let report = fig11::run(scale);
    println!("\n{report}\n");
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
