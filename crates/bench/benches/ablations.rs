//! Ablation benches for the design choices DESIGN.md calls out: the
//! write-buffer share, the number of priorities, and TRIM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hstorage::experiments::ablation;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let scale = hstorage_bench::bench_scale();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for b_frac in [0.0f64, 0.10, 0.25] {
        group.bench_with_input(
            BenchmarkId::new("write_buffer_fraction", format!("{:.0}%", b_frac * 100.0)),
            &b_frac,
            |b, &frac| {
                b.iter(|| black_box(ablation::write_buffer_sweep(scale, &[frac])));
            },
        );
    }
    for n in [4u8, 8, 12] {
        group.bench_with_input(BenchmarkId::new("priority_count", n), &n, |b, &n| {
            b.iter(|| black_box(ablation::priority_range_sweep(scale, &[n])));
        });
    }
    group.bench_function("trim_vs_no_trim", |b| {
        b.iter(|| black_box(ablation::trim_ablation(scale)));
    });
    group.finish();

    let (with_trim, without_trim) = ablation::trim_ablation(scale);
    println!(
        "\nTRIM ablation: {} = {:.3} s, {} = {:.3} s\n",
        with_trim.setting, with_trim.seconds, without_trim.setting, without_trim.seconds
    );
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
