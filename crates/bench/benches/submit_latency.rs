//! Single-thread submit latency of the shard interior (not a paper
//! figure): ns/submit through one `HybridCache`, measured per request
//! shape and per shard-interior backend.
//!
//! Three shapes isolate the three structure paths
//! (`hstorage_bench::workload`):
//!
//! * `hit` — reads cycling over a resident working set far larger than
//!   one block per shard, so the optimistic descriptor never matches and
//!   every submit pays the full locked path: stripe mutex, metadata
//!   probe, policy-list touch. This is the path the open-addressing
//!   table and the arena-backed lists were built for.
//! * `miss` — never-repeating cold reads: table insert, list push and —
//!   once the cache fills — eviction (list pop, table remove with
//!   backward-shift deletion on the flat backend).
//! * `repeat_hit` — back-to-back reads of one hot block: the optimistic
//!   fast path, which never touches the table at all. Flat and map
//!   should be indistinguishable here; it is the control row.
//!
//! Each shape runs on both backends: `flat` (open-addressing table +
//! intrusive arena lists) and `map` (the legacy `HashMap`/`VecDeque`
//! interior, kept as the bit-identical reference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hstorage_bench::workload::{
    fresh_interior_cache, interior_hit_read, interior_miss_read, interior_submits,
    warmed_interior_cache, INTERIOR_SET,
};
use hstorage_cache::ListBackend;

/// Submits per iteration — a full pass over the working set for the hit
/// cycle, and the same count for the other shapes so ns/submit compares.
const PER_ITER: u64 = INTERIOR_SET;

fn bench_submit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("submit_latency");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(PER_ITER));

    for backend in [ListBackend::Flat, ListBackend::Map] {
        // Hit cycle: warmed once, shared across iterations — pure hits,
        // so no iteration changes what the next one measures.
        let cache = warmed_interior_cache(backend);
        group.bench_function(BenchmarkId::new("hit", backend.label()), |b| {
            b.iter(|| interior_submits(&cache, 0, PER_ITER, interior_hit_read));
        });

        // Miss cycle: the address counter keeps rising across iterations
        // so every submit stays a miss (steady-state: allocate + evict).
        let cache = fresh_interior_cache(backend);
        let mut next = 0u64;
        group.bench_function(BenchmarkId::new("miss", backend.label()), |b| {
            b.iter(|| {
                let r = interior_submits(&cache, next, PER_ITER, interior_miss_read);
                next += PER_ITER;
                r
            });
        });

        // Repeat-hit control: same block every time — the optimistic fast
        // path serves it without touching the interior structures.
        let cache = warmed_interior_cache(backend);
        group.bench_function(BenchmarkId::new("repeat_hit", backend.label()), |b| {
            b.iter(|| interior_submits(&cache, 0, PER_ITER, |_| interior_hit_read(0)));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_submit_latency);
criterion_main!(benches);
