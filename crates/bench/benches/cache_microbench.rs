//! Microbenchmarks of the hybrid cache itself (not a paper figure): the
//! per-block cost of the selective allocation / eviction path and of the
//! classification-blind LRU baseline, plus TRIM throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hstorage_cache::{HybridCache, LruCache, StorageSystem};
use hstorage_storage::{
    BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass, TrimCommand,
};
use std::hint::black_box;

const BLOCKS: u64 = 4_096;

fn random_read(i: u64, prio: u8) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::read(BlockRange::new(i % (BLOCKS * 2), 1), false),
        RequestClass::Random,
        QosPolicy::priority(prio),
    )
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_microbench");
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("hybrid_random_mixed_priorities", |b| {
        b.iter(|| {
            let cache = HybridCache::new(PolicyConfig::paper_default(), BLOCKS);
            for i in 0..10_000u64 {
                cache.submit(black_box(random_read(i, 2 + (i % 5) as u8)));
            }
            black_box(cache.resident_blocks())
        });
    });

    group.bench_function("lru_random", |b| {
        b.iter(|| {
            let cache = LruCache::new(BLOCKS);
            for i in 0..10_000u64 {
                cache.submit(black_box(random_read(i, 2)));
            }
            black_box(cache.resident_blocks())
        });
    });

    group.bench_function("hybrid_sequential_bypass", |b| {
        b.iter(|| {
            let cache = HybridCache::new(PolicyConfig::paper_default(), BLOCKS);
            for i in 0..100u64 {
                cache.submit(ClassifiedRequest::new(
                    IoRequest::read(BlockRange::new(i * 100, 100), true),
                    RequestClass::Sequential,
                    QosPolicy::NonCachingNonEviction,
                ));
            }
            black_box(cache.resident_blocks())
        });
    });

    group.bench_function("hybrid_trim", |b| {
        b.iter(|| {
            let cache = HybridCache::new(PolicyConfig::paper_default(), BLOCKS);
            for i in 0..(BLOCKS / 32) {
                cache.submit(ClassifiedRequest::new(
                    IoRequest::write(BlockRange::new(i * 32, 32), true),
                    RequestClass::TemporaryData,
                    QosPolicy::priority(1),
                ));
            }
            cache.trim(&TrimCommand::single(BlockRange::new(0u64, BLOCKS)));
            black_box(cache.resident_blocks())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
