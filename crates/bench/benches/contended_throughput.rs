//! Contended submit throughput of the cache hot path (not a paper
//! figure): wall-clock hot-read submits/second against one shared,
//! pre-warmed `HybridCache` at 1–32 OS threads.
//!
//! Every request is a repeat read of a shard's single hot block (the
//! "index root page" shape — see `hstorage_bench::workload::hot_read`),
//! and all threads share one schedule so they pile onto the same shard at
//! once. Two engine configurations are compared:
//!
//! * `optimistic` — the lock-light hot path: repeat hits are served under
//!   the shard's `RwLock` read view with atomic statistics, never taking
//!   the stripe mutex;
//! * `locked` — `with_optimistic_reads(false)`, the pre-optimization hot
//!   path that takes the stripe mutex on every submission.
//!
//! Both serve the identical workload with identical simulated timing and
//! statistics; what diverges is wall-clock scalability under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hstorage_bench::workload::{contended_hot_reads, warmed_cache, HOT_READS_PER_THREAD};

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for threads in [1usize, 2, 4, 8, 16, 32] {
        group.throughput(Throughput::Elements(threads as u64 * HOT_READS_PER_THREAD));
        for (label, optimistic) in [("optimistic", true), ("locked", false)] {
            // The cache is warmed once and shared across iterations: the
            // workload is pure repeat hits, so no iteration changes what
            // the next one measures.
            let cache = warmed_cache(optimistic);
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| contended_hot_reads(&cache, threads, HOT_READS_PER_THREAD));
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_contended);
criterion_main!(benches);
