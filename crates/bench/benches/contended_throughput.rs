//! Contended submit throughput of the cache hot path (not a paper
//! figure): wall-clock hot-read submits/second against one shared,
//! pre-warmed `HybridCache` at 1–32 OS threads.
//!
//! Every request is a repeat read of a shard's single hot block (the
//! "index root page" shape — see `hstorage_bench::workload::hot_read`),
//! and all threads share one schedule so they pile onto the same shard at
//! once. Two engine configurations are compared:
//!
//! * `optimistic` — the lock-light hot path: repeat hits are served under
//!   the shard's `RwLock` read view with atomic statistics, never taking
//!   the stripe mutex;
//! * `locked` — `with_optimistic_reads(false)`, the pre-optimization hot
//!   path that takes the stripe mutex on every submission.
//!
//! Both serve the identical workload with identical simulated timing and
//! statistics; what diverges is wall-clock scalability under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hstorage_bench::workload::{
    contended_hot_reads, warmed_backend_cache, warmed_cache, HOT_READS_PER_THREAD,
};
use hstorage_cache::ListBackend;

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for threads in [1usize, 2, 4, 8, 16, 32] {
        group.throughput(Throughput::Elements(threads as u64 * HOT_READS_PER_THREAD));
        for (label, optimistic) in [("optimistic", true), ("locked", false)] {
            // The cache is warmed once and shared across iterations: the
            // workload is pure repeat hits, so no iteration changes what
            // the next one measures.
            let cache = warmed_cache(optimistic);
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| contended_hot_reads(&cache, threads, HOT_READS_PER_THREAD));
            });
        }
    }

    // Shard-interior backends at full contention: 32 threads on the
    // lock-light engine, flat (open-addressing + arena) vs the legacy map
    // interior. The repeat-hit workload is served by the optimistic fast
    // path, so the pair doubles as a control: a flat-vs-map gap here
    // would mean the interior leaked onto the fast path.
    let threads = 32usize;
    group.throughput(Throughput::Elements(threads as u64 * HOT_READS_PER_THREAD));
    for backend in [ListBackend::Flat, ListBackend::Map] {
        let cache = warmed_backend_cache(true, backend);
        group.bench_with_input(
            BenchmarkId::new(format!("interior_{}", backend.label()), threads),
            &threads,
            |b, &threads| {
                b.iter(|| contended_hot_reads(&cache, threads, HOT_READS_PER_THREAD));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_contended);
criterion_main!(benches);
