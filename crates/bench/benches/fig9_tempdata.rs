//! Figure 9 and Table 7: the temporary-data-dominated query Q18 under the
//! four storage configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hstorage::experiments::{fig9, run_single_query};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::QueryId;
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let scale = hstorage_bench::bench_scale();
    let mut group = c.benchmark_group("fig9_tempdata");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in StorageConfigKind::all() {
        group.bench_with_input(BenchmarkId::new("Q18", kind.label()), &kind, |b, &kind| {
            b.iter(|| black_box(run_single_query(scale, kind, QueryId::Q(18))));
        });
    }
    group.finish();

    let report = fig9::run(scale);
    println!("\n{report}\n");
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
