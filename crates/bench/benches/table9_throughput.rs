//! Table 9 and Figure 12: the concurrent throughput test (3 query streams
//! and 1 update stream) under the four storage configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hstorage::experiments::table9;
use hstorage::{SystemConfig, TpchSystem};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::throughput::{query_stream, update_stream, PAPER_QUERY_STREAMS};
use hstorage_tpch::{QueryId, TpchScale};
use std::hint::black_box;

fn run_throughput(scale: TpchScale, kind: StorageConfigKind) -> usize {
    let mut system = TpchSystem::new(SystemConfig::throughput(scale, kind));
    let mut streams: Vec<(String, Vec<QueryId>)> = (0..PAPER_QUERY_STREAMS)
        .map(|i| (format!("query-stream-{}", i + 1), query_stream(i)))
        .collect();
    streams.push((
        "update-stream".to_string(),
        update_stream(PAPER_QUERY_STREAMS),
    ));
    system.run_streams(&streams, 64).len()
}

fn bench_table9(c: &mut Criterion) {
    let scale = TpchScale::new(0.01);
    let mut group = c.benchmark_group("table9_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in StorageConfigKind::all() {
        group.bench_with_input(
            BenchmarkId::new("throughput_test", kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| black_box(run_throughput(scale, kind)));
            },
        );
    }
    group.finish();

    let report = table9::run(scale);
    println!("\n{report}\n");
}

criterion_group!(benches, bench_table9);
criterion_main!(benches);
