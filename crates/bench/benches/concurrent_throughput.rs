//! Thread-scaling throughput of the shared storage service (not a paper
//! figure): submits/second against one shared `HybridCache` at 1, 2 and 4
//! OS threads.
//!
//! Two configurations are measured:
//!
//! * `sharded8` — the lock-striped cache (8 shards), where submits to
//!   different shards proceed in parallel;
//! * `unsharded` at 1 thread — the single-shard configuration, directly
//!   comparable to the pre-refactor `cache_microbench` numbers (same
//!   request stream, one lock acquisition per request).
//!
//! Note the simulated device clock is shared and atomic, so the *virtual*
//! service time is identical in all configurations — what scales with
//! threads is the real (wall-clock) cost of cache management.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hstorage_cache::{HybridCache, StorageSystem};
use hstorage_storage::{
    BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass,
};
use std::hint::black_box;
use std::sync::Arc;

const BLOCKS: u64 = 4_096;
const TOTAL_SUBMITS: u64 = 10_000;

fn random_read(i: u64, prio: u8) -> ClassifiedRequest {
    ClassifiedRequest::new(
        IoRequest::read(BlockRange::new(i % (BLOCKS * 2), 1), false),
        RequestClass::Random,
        QosPolicy::priority(prio),
    )
}

/// Drives `TOTAL_SUBMITS` random reads through `cache` from `threads`
/// threads, each thread walking a disjoint address slice.
fn drive(cache: &Arc<HybridCache>, threads: u64) -> u64 {
    let per_thread = TOTAL_SUBMITS / threads;
    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = Arc::clone(cache);
            s.spawn(move || {
                for i in 0..per_thread {
                    let addr = t * per_thread + i;
                    cache.submit(black_box(random_read(addr, 2 + (addr % 5) as u8)));
                }
            });
        }
    });
    cache.resident_blocks()
}

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_throughput");
    group.throughput(Throughput::Elements(TOTAL_SUBMITS));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Single-shard, single-thread: the pre-refactor baseline shape.
    group.bench_function("unsharded/1-thread", |b| {
        b.iter(|| {
            let cache = Arc::new(HybridCache::new(PolicyConfig::paper_default(), BLOCKS));
            drive(&cache, 1)
        });
    });

    for threads in [1u64, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sharded8", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cache = Arc::new(HybridCache::with_shard_count(
                        PolicyConfig::paper_default(),
                        BLOCKS,
                        8,
                    ));
                    drive(&cache, threads)
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);
