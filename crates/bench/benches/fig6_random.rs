//! Figure 6 and Tables 5/6: random-dominated queries (Q9, Q21) under the
//! four storage configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hstorage::experiments::{fig6, run_single_query};
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::QueryId;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let scale = hstorage_bench::bench_scale();
    let mut group = c.benchmark_group("fig6_random");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for q in [9u8, 21] {
        for kind in StorageConfigKind::all() {
            group.bench_with_input(
                BenchmarkId::new(format!("Q{q}"), kind.label()),
                &(q, kind),
                |b, &(q, kind)| {
                    b.iter(|| black_box(run_single_query(scale, kind, QueryId::Q(q))));
                },
            );
        }
    }
    group.finish();

    let report = fig6::run(scale);
    println!("\n{report}\n");
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
