//! Figure 5 and Table 4: sequential-dominated queries (Q1, Q5, Q11, Q19)
//! under the four storage configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hstorage::experiments::fig5;
use hstorage::experiments::run_single_query;
use hstorage_cache::StorageConfigKind;
use hstorage_tpch::QueryId;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let scale = hstorage_bench::bench_scale();
    let mut group = c.benchmark_group("fig5_sequential");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for q in fig5::SEQUENTIAL_QUERIES {
        for kind in StorageConfigKind::all() {
            group.bench_with_input(
                BenchmarkId::new(format!("Q{q}"), kind.label()),
                &(q, kind),
                |b, &(q, kind)| {
                    b.iter(|| black_box(run_single_query(scale, kind, QueryId::Q(q))));
                },
            );
        }
    }
    group.finish();

    let report = fig5::run(scale);
    println!("\n{report}\n");
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
