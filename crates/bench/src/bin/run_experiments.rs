//! Regenerates every table and figure of the paper's evaluation and prints
//! them, together with the paper-vs-measured comparison rows recorded in
//! EXPERIMENTS.md.
//!
//! Usage:
//! `cargo run --release -p hstorage-bench --bin run_experiments \
//!     [scale] [--check] [--only <name>]... [--report <path>]`
//!
//! * `scale` — optional TPC-H scale factor (default 0.1 for the
//!   single-query experiments, half of that for the sequence/concurrency
//!   experiments).
//! * `--check` — exit non-zero if any paper-vs-measured key ratio produced
//!   by the experiments that ran disagrees in *direction* with the paper —
//!   the CI paper-fidelity gate.
//! * `--only <name>` — run a single experiment instead of all of them
//!   (repeatable). Names: `fig4`, `fig5`, `fig6`, `fig9`, `fig11`,
//!   `table9`, `ablations`, `policy_comparison`, `policy_ablation`,
//!   `tier_migration`, `crash_recovery`. With `--check`, only the ratios
//!   of the selected experiments are gated.
//! * `--report <path>` — additionally write the key ratios of the
//!   experiments that ran as a JSON comparison file (the
//!   `BENCH_report.json` row schema), so CI can upload the run as an
//!   artifact.

use hstorage::experiments::{
    ablation, crash_recovery, fig11, fig4, fig5, fig6, fig9, policy_ablation, policy_comparison,
    table9, tier_migration,
};
use hstorage::report::{comparisons_to_json, PaperComparison};
use hstorage_tpch::TpchScale;

/// One named experiment: a banner, and a runner that prints its report and
/// returns the paper-vs-measured rows it contributes to the fidelity gate.
struct Experiment {
    name: &'static str,
    banner: &'static str,
    run: Box<dyn Fn() -> Vec<PaperComparison>>,
}

fn experiments(single_scale: TpchScale, long_scale: TpchScale) -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig4",
            banner: "Figure 4",
            run: Box::new(move || {
                println!("{}\n", fig4::run(single_scale));
                Vec::new()
            }),
        },
        Experiment {
            name: "fig5",
            banner: "Figure 5 / Table 4",
            run: Box::new(move || {
                let f5 = fig5::run(single_scale);
                println!("{f5}\n");
                vec![
                    PaperComparison::new(
                        "Q1 LRU slowdown vs HDD-only",
                        368.0 / 317.0,
                        f5.lru_slowdown("Q1").unwrap_or(0.0),
                    ),
                    PaperComparison::new(
                        "Q19 LRU slowdown vs HDD-only",
                        315.0 / 252.0,
                        f5.lru_slowdown("Q19").unwrap_or(0.0),
                    ),
                    PaperComparison::new(
                        "Q1 hStorage-DB overhead vs HDD-only",
                        1.0,
                        f5.hstorage_overhead("Q1").unwrap_or(0.0),
                    ),
                ]
            }),
        },
        Experiment {
            name: "fig6",
            banner: "Figure 6 / Tables 5-6",
            run: Box::new(move || {
                let f6 = fig6::run(single_scale);
                println!("{f6}\n");
                vec![
                    PaperComparison::new(
                        "Q9 SSD-only speedup vs HDD-only",
                        7.2,
                        f6.ssd_speedup("Q9").unwrap_or(0.0),
                    ),
                    PaperComparison::new(
                        "Q21 SSD-only speedup vs HDD-only",
                        3.9,
                        f6.ssd_speedup("Q21").unwrap_or(0.0),
                    ),
                ]
            }),
        },
        Experiment {
            name: "fig9",
            banner: "Figure 9 / Table 7",
            run: Box::new(move || {
                let f9 = fig9::run(single_scale);
                println!("{f9}\n");
                vec![
                    PaperComparison::new(
                        "Q18 SSD-only speedup vs HDD-only",
                        1.45,
                        f9.ssd_speedup().unwrap_or(0.0),
                    ),
                    PaperComparison::new(
                        "Q18 hStorage-DB speedup vs LRU",
                        1.2,
                        f9.hstorage_over_lru().unwrap_or(0.0),
                    ),
                ]
            }),
        },
        Experiment {
            name: "fig11",
            banner: "Figure 11 / Table 8",
            run: Box::new(move || {
                let f11 = fig11::run(long_scale);
                println!("{f11}\n");
                vec![PaperComparison::new(
                    "Power-test hStorage-DB speedup vs HDD-only (Table 8)",
                    86_009.0 / 39_132.0,
                    f11.hstorage_speedup().unwrap_or(0.0),
                )]
            }),
        },
        Experiment {
            name: "table9",
            banner: "Table 9 / Figure 12",
            run: Box::new(move || {
                let t9 = table9::run(long_scale);
                println!("{t9}\n");
                vec![
                    PaperComparison::new(
                        "Throughput hStorage-DB speedup vs HDD-only (Table 9)",
                        43.0 / 13.0,
                        t9.hstorage_over_hdd().unwrap_or(0.0),
                    ),
                    PaperComparison::new(
                        "Throughput hStorage-DB speedup vs LRU (Table 9)",
                        43.0 / 28.0,
                        t9.hstorage_over_lru().unwrap_or(0.0),
                    ),
                ]
            }),
        },
        Experiment {
            name: "ablations",
            banner: "Ablations (not in the paper)",
            run: Box::new(move || {
                for p in ablation::write_buffer_sweep(long_scale, &[0.0, 0.05, 0.10, 0.25]) {
                    println!("write buffer {:>28}: {:.3} s", p.setting, p.seconds);
                }
                for p in ablation::priority_range_sweep(long_scale, &[4, 6, 8, 12]) {
                    println!("priority count {:>26}: {:.3} s", p.setting, p.seconds);
                }
                let (with_trim, without_trim) = ablation::trim_ablation(long_scale);
                println!("{:>41}: {:.3} s", with_trim.setting, with_trim.seconds);
                println!(
                    "{:>41}: {:.3} s\n",
                    without_trim.setting, without_trim.seconds
                );
                Vec::new()
            }),
        },
        Experiment {
            name: "policy_comparison",
            banner: "Policy comparison (cache-policy framework)",
            run: Box::new(move || {
                let pc = policy_comparison::run(long_scale);
                println!("{pc}\n");
                vec![PaperComparison::new(
                    "Q-mix semantic-priority speedup vs LRU on one engine",
                    1.2,
                    pc.semantic_over_lru().unwrap_or(0.0),
                )]
            }),
        },
        Experiment {
            name: "policy_ablation",
            banner: "Policy knob ablation (CFLRU window, 2Q Kin/Kout)",
            run: Box::new(move || {
                let pa = policy_ablation::run(long_scale);
                println!("{pa}\n");
                vec![
                    // Both expectations are directional consequences of
                    // the knob's definition, so they double as fidelity
                    // gates for the knob plumbing itself.
                    PaperComparison::new(
                        "CFLRU write-backs, window 5% vs 75% (knob ablation)",
                        1.2,
                        pa.cflru_writeback_saving().unwrap_or(0.0),
                    ),
                    PaperComparison::new(
                        "2Q hit ratio, Kin 10% vs 50% (knob ablation)",
                        1.1,
                        pa.two_q_probation_payoff().unwrap_or(0.0),
                    ),
                ]
            }),
        },
        Experiment {
            name: "tier_migration",
            banner: "Tier migration (phase-shifting workload)",
            run: Box::new(move || {
                let tm = tier_migration::run();
                println!("{tm}\n");
                vec![
                    // Both expectations restate the experiment's purpose
                    // as directions: migration must win the phase shift
                    // on hits and move the shifted set's traffic off the
                    // disk. The magnitudes are what the fixed workload
                    // measures at the shipped knob values.
                    PaperComparison::new(
                        "Phase-shift hit-ratio gain, migration on vs off",
                        5.5,
                        tm.hit_gain(),
                    ),
                    PaperComparison::new(
                        "Phase-shift HDD busy-time saving, migration on vs off",
                        5.0,
                        tm.hdd_saving(),
                    ),
                ]
            }),
        },
        Experiment {
            name: "crash_recovery",
            banner: "Crash recovery (fault-injected journal replay)",
            run: Box::new(move || {
                let cr = crash_recovery::run();
                println!("{cr}\n");
                vec![
                    // Recovery has no paper figure; the expectations are
                    // the invariant itself — every crash point converges,
                    // full-log recovery loses nothing and replays the
                    // same simulated traffic.
                    PaperComparison::new(
                        "Crash-point convergence rate",
                        1.0,
                        cr.convergence_rate(),
                    ),
                    PaperComparison::new(
                        "Blocks recovered from the full log",
                        1.0,
                        cr.blocks_recovered_ratio(),
                    ),
                    PaperComparison::new("Replay sim time vs clean run", 1.0, cr.sim_time_ratio()),
                ]
            }),
        },
    ]
}

fn main() {
    let mut arg_scale: Option<f64> = None;
    let mut check = false;
    let mut only: Vec<String> = Vec::new();
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let usage = "usage: run_experiments [scale] [--check] [--only <name>]... [--report <path>]";
    while let Some(arg) = args.next() {
        if arg == "--check" {
            check = true;
        } else if arg == "--only" {
            match args.next() {
                Some(name) => only.push(name),
                None => {
                    eprintln!("--only needs an experiment name\n{usage}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--report" {
            match args.next() {
                Some(path) => report_path = Some(path),
                None => {
                    eprintln!("--report needs a path\n{usage}");
                    std::process::exit(2);
                }
            }
        } else if let Ok(scale) = arg.parse::<f64>() {
            arg_scale = Some(scale);
        } else {
            eprintln!("unknown argument: {arg}\n{usage}");
            std::process::exit(2);
        }
    }
    let single_scale = arg_scale
        .map(TpchScale::new)
        .unwrap_or_else(hstorage_bench::report_scale);
    let long_scale = arg_scale
        .map(|s| TpchScale::new((s / 2.0).max(0.01)))
        .unwrap_or_else(hstorage_bench::report_concurrency_scale);

    let experiments = experiments(single_scale, long_scale);
    for name in &only {
        if !experiments.iter().any(|e| e.name == name) {
            let known: Vec<&str> = experiments.iter().map(|e| e.name).collect();
            eprintln!(
                "unknown experiment {name:?}; available: {}",
                known.join(", ")
            );
            std::process::exit(2);
        }
    }

    println!("hStorage-DB reproduction — experiment harness");
    println!(
        "single-query scale = {:.2}, sequence/concurrency scale = {:.2}\n",
        single_scale.scale_factor, long_scale.scale_factor
    );

    let mut comparisons = Vec::new();
    for experiment in &experiments {
        if !only.is_empty() && !only.iter().any(|n| n == experiment.name) {
            continue;
        }
        println!(
            "==================== {} ====================",
            experiment.banner
        );
        comparisons.extend((experiment.run)());
    }

    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, comparisons_to_json(&comparisons)) {
            eprintln!("run_experiments: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("key ratios written to {path}");
    }

    if comparisons.is_empty() {
        if check {
            println!("--check: the selected experiments contribute no key ratios");
        }
        return;
    }

    println!("==================== Paper vs measured (key ratios) ====================");
    for c in &comparisons {
        println!(
            "{:60} paper {:7.2}   measured {:7.2}   direction {}",
            c.metric,
            c.paper,
            c.measured,
            if c.same_direction() { "OK" } else { "MISMATCH" }
        );
    }
    let mismatches = comparisons.iter().filter(|c| !c.same_direction()).count();
    println!(
        "\n{} of {} key ratios agree in direction",
        comparisons.len() - mismatches,
        comparisons.len()
    );
    if check && mismatches > 0 {
        eprintln!("--check: {mismatches} key ratio(s) disagree with the paper's direction");
        std::process::exit(1);
    }
}
