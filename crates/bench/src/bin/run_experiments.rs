//! Regenerates every table and figure of the paper's evaluation and prints
//! them, together with the paper-vs-measured comparison rows recorded in
//! EXPERIMENTS.md.
//!
//! Usage:
//! `cargo run --release -p hstorage-bench --bin run_experiments [scale] [--check]`
//! where the optional `scale` is a TPC-H scale factor (default 0.1 for the
//! single-query experiments, half of that for the sequence/concurrency
//! experiments). With `--check` the binary exits non-zero if any
//! paper-vs-measured key ratio disagrees in direction — the CI
//! paper-fidelity gate.

use hstorage::experiments::{ablation, fig11, fig4, fig5, fig6, fig9, table9};
use hstorage::report::PaperComparison;
use hstorage_tpch::TpchScale;

fn main() {
    let mut arg_scale: Option<f64> = None;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else if let Ok(scale) = arg.parse::<f64>() {
            arg_scale = Some(scale);
        } else {
            eprintln!("unknown argument: {arg}");
            eprintln!("usage: run_experiments [scale] [--check]");
            std::process::exit(2);
        }
    }
    let single_scale = arg_scale
        .map(TpchScale::new)
        .unwrap_or_else(hstorage_bench::report_scale);
    let long_scale = arg_scale
        .map(|s| TpchScale::new((s / 2.0).max(0.01)))
        .unwrap_or_else(hstorage_bench::report_concurrency_scale);

    println!("hStorage-DB reproduction — experiment harness");
    println!(
        "single-query scale = {:.2}, sequence/concurrency scale = {:.2}\n",
        single_scale.scale_factor, long_scale.scale_factor
    );

    println!("==================== Figure 4 ====================");
    let f4 = fig4::run(single_scale);
    println!("{f4}\n");

    println!("==================== Figure 5 / Table 4 ====================");
    let f5 = fig5::run(single_scale);
    println!("{f5}\n");

    println!("==================== Figure 6 / Tables 5-6 ====================");
    let f6 = fig6::run(single_scale);
    println!("{f6}\n");

    println!("==================== Figure 9 / Table 7 ====================");
    let f9 = fig9::run(single_scale);
    println!("{f9}\n");

    println!("==================== Figure 11 / Table 8 ====================");
    let f11 = fig11::run(long_scale);
    println!("{f11}\n");

    println!("==================== Table 9 / Figure 12 ====================");
    let t9 = table9::run(long_scale);
    println!("{t9}\n");

    println!("==================== Ablations (not in the paper) ====================");
    for p in ablation::write_buffer_sweep(long_scale, &[0.0, 0.05, 0.10, 0.25]) {
        println!("write buffer {:>28}: {:.3} s", p.setting, p.seconds);
    }
    for p in ablation::priority_range_sweep(long_scale, &[4, 6, 8, 12]) {
        println!("priority count {:>26}: {:.3} s", p.setting, p.seconds);
    }
    let (with_trim, without_trim) = ablation::trim_ablation(long_scale);
    println!("{:>41}: {:.3} s", with_trim.setting, with_trim.seconds);
    println!(
        "{:>41}: {:.3} s",
        without_trim.setting, without_trim.seconds
    );

    println!("\n==================== Paper vs measured (key ratios) ====================");
    let comparisons = vec![
        PaperComparison::new(
            "Q1 LRU slowdown vs HDD-only",
            368.0 / 317.0,
            f5.lru_slowdown("Q1").unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Q19 LRU slowdown vs HDD-only",
            315.0 / 252.0,
            f5.lru_slowdown("Q19").unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Q1 hStorage-DB overhead vs HDD-only",
            1.0,
            f5.hstorage_overhead("Q1").unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Q9 SSD-only speedup vs HDD-only",
            7.2,
            f6.ssd_speedup("Q9").unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Q21 SSD-only speedup vs HDD-only",
            3.9,
            f6.ssd_speedup("Q21").unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Q18 SSD-only speedup vs HDD-only",
            1.45,
            f9.ssd_speedup().unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Q18 hStorage-DB speedup vs LRU",
            1.2,
            f9.hstorage_over_lru().unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Power-test hStorage-DB speedup vs HDD-only (Table 8)",
            86_009.0 / 39_132.0,
            f11.hstorage_speedup().unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Throughput hStorage-DB speedup vs HDD-only (Table 9)",
            43.0 / 13.0,
            t9.hstorage_over_hdd().unwrap_or(0.0),
        ),
        PaperComparison::new(
            "Throughput hStorage-DB speedup vs LRU (Table 9)",
            43.0 / 28.0,
            t9.hstorage_over_lru().unwrap_or(0.0),
        ),
    ];
    for c in &comparisons {
        println!(
            "{:60} paper {:7.2}   measured {:7.2}   direction {}",
            c.metric,
            c.paper,
            c.measured,
            if c.same_direction() { "OK" } else { "MISMATCH" }
        );
    }
    let mismatches = comparisons.iter().filter(|c| !c.same_direction()).count();
    println!(
        "\n{} of {} key ratios agree in direction",
        comparisons.len() - mismatches,
        comparisons.len()
    );
    if check && mismatches > 0 {
        eprintln!("--check: {mismatches} key ratio(s) disagree with the paper's direction");
        std::process::exit(1);
    }
}
