//! CI performance-regression gate.
//!
//! Runs a quick submit-throughput workload (shared with the
//! `batch_throughput` and `policy_sweep` benches via
//! `hstorage_bench::workload`), writes the measurements to
//! `BENCH_report.json` as machine-readable `PaperComparison`-style rows,
//! compares them against the committed `BENCH_baseline.json`, and exits
//! non-zero if any *gated* metric regressed by more than 25% — or if
//! batched submission is not strictly faster than per-request submission
//! (the vectored-path acceptance criterion).
//!
//! Most row values are oriented so that **higher is better** (throughputs
//! and speedup ratios); the service request-latency percentile rows are
//! **lower is better** and are gated with the mirrored condition (fail when
//! measured exceeds baseline ÷ 0.75). Not every row is gated:
//!
//! * `sim:` rows are measured in *simulated* device time, which is
//!   deterministic — identical on every machine — so any drift is a real
//!   behaviour change in the storage model, the batching pipeline or a
//!   cache policy. Gated. This includes a mixed-workload throughput *and*
//!   hit-ratio row per selectable cache policy, so a silent change to any
//!   replacement algorithm fails the gate; on top of the baseline
//!   comparison, ARC's hit ratio must never fall below engine-LRU's (the
//!   adaptive policy's acceptance criterion). The query-service rows run a
//!   fixed stream workload through the bounded-worker service at one
//!   worker — fully deterministic — and gate the simulated p50/p99/p999
//!   request latencies. The tier-migration rows run the phase-shift
//!   workload with and without the background migration engine: the
//!   migration-off hit ratio pins the engine's default behaviour
//!   bit-for-bit, and migration-on must strictly beat it (the migration
//!   acceptance criterion, gated baseline-free like the ARC one).
//! * The wall-clock *speedup ratio* is machine-robust (both sides run on
//!   the same machine in the same process). Gated.
//! * Absolute wall-clock throughputs vary with the runner's hardware, so
//!   they are reported for the record but **not** compared against the
//!   committed baseline (a laptop baseline would fail every slower CI
//!   runner spuriously).
//!
//! A gated metric missing from the baseline is an error: renaming or
//! adding rows requires refreshing the baseline, otherwise the gate would
//! silently guard nothing.
//!
//! Usage:
//! `bench_gate [--baseline <path>] [--report <path>]
//! [--write-baseline | --update-baseline | --check-baseline]`
//!
//! `--update-baseline` regenerates the baseline **deterministically**:
//! `sim:` rows take the freshly measured (machine-independent) values and
//! machine-dependent rows keep their committed values, so a baseline bump
//! produces the same file on any machine — no more hand-editing. Only new
//! machine-dependent rows fall back to this machine's measurement. The run
//! ends with a changed-vs-preserved summary so a bump that was expected to
//! be a no-op is visible as one.
//! `--write-baseline` snapshots *every* row as measured here (first-time
//! setup, or after an intentional wall-clock performance change).
//! `--check-baseline` regenerates the deterministic rows in memory and
//! fails — writing nothing — if `--update-baseline` would change any of
//! them: the CI guard against behaviour changes shipped without a baseline
//! refresh. Wall-clock measurements are skipped entirely (they are
//! preserved by `--update-baseline` anyway, so they cannot drift).

use hstorage::experiments::{crash_recovery, tier_migration};
use hstorage::report::{comparisons_from_json, comparisons_to_json, format_table, PaperComparison};
use hstorage_bench::workload::{
    contended_hot_reads, drive, fresh_cache, interior_hit_read, interior_submits, mixed_policy_run,
    random_read, scan_read, service_latency_percentiles, warmed_cache, warmed_interior_cache,
    HOT_READS_PER_THREAD, QUEUE_DEPTH, TOTAL_SUBMITS,
};
use hstorage_cache::{CachePolicyKind, ListBackend, StorageSystem};
use std::time::Instant;

const WALL_RUNS: usize = 5;
/// A gated metric fails when it drops below this fraction of the baseline.
const REGRESSION_FLOOR: f64 = 0.75;

/// One gate metric: value measured this run, whether the 25% baseline
/// comparison applies to it, whether the measurement is deterministic
/// (simulated time — identical on every machine), and its orientation
/// (latency rows are lower-is-better; everything else higher-is-better).
/// The orientation is in-memory only — the JSON rows stay shape-compatible
/// with `PaperComparison`.
struct Measurement {
    metric: String,
    value: f64,
    gated: bool,
    deterministic: bool,
    lower_is_better: bool,
}

/// Median wall-clock submits/second over [`WALL_RUNS`] fresh-cache runs of
/// the scan-shaped workload (the semantic-batch hot path the vectored
/// submission pipeline targets).
fn wall_throughput(batch: usize) -> f64 {
    let mut rates: Vec<f64> = (0..WALL_RUNS)
        .map(|_| {
            let cache = fresh_cache(QUEUE_DEPTH);
            let start = Instant::now();
            drive(&cache, batch, scan_read);
            TOTAL_SUBMITS as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[WALL_RUNS / 2]
}

/// Simulated device seconds for a batched scan at the given queue depth —
/// deterministic, so it is a bit-stable regression guard for the storage
/// timing model and the merge pipeline.
fn sim_scan_seconds(queue_depth: usize) -> f64 {
    let cache = fresh_cache(queue_depth);
    drive(&cache, 64, scan_read);
    cache.now().as_secs_f64()
}

/// Deterministic simulated seconds for the random-shaped workload — guards
/// the cache-management and random-service paths the scan metric misses.
fn sim_random_seconds() -> f64 {
    let cache = fresh_cache(QUEUE_DEPTH);
    drive(&cache, 64, random_read);
    cache.now().as_secs_f64()
}

/// Runs the contended hot-read workload single-threaded (deterministic) on
/// the lock-light and the fully locked engine and returns
/// `(stats_parity, time_parity, fast_path_rate)`: the parity values are
/// `1.0` iff the two engines' logical statistics / simulated clocks came
/// out bit-identical — the optimistic path's correctness contract — and
/// the rate is the fraction of hot-path visits the lock-light engine
/// served without the stripe mutex.
fn hot_read_equivalence() -> (f64, f64, f64) {
    let optimistic = warmed_cache(true);
    let locked = warmed_cache(false);
    contended_hot_reads(&optimistic, 1, HOT_READS_PER_THREAD);
    contended_hot_reads(&locked, 1, HOT_READS_PER_THREAD);
    let stats_parity = f64::from(optimistic.stats() == locked.stats());
    let time_parity = f64::from(optimistic.now() == locked.now());
    (
        stats_parity,
        time_parity,
        optimistic.stats().contention.fast_path_rate(),
    )
}

/// Median wall-clock single-thread submits/second over [`WALL_RUNS`]
/// pre-warmed runs of the interior hit cycle on the given shard-interior
/// backend. The working set holds hundreds of resident blocks per shard,
/// so the optimistic descriptor never matches and every submit pays the
/// locked path — stripe mutex, metadata probe, policy-list touch — which
/// is exactly where the flat and the legacy map interior differ.
fn interior_wall_throughput(backend: ListBackend) -> f64 {
    let mut rates: Vec<f64> = (0..WALL_RUNS)
        .map(|_| {
            let cache = warmed_interior_cache(backend);
            let start = Instant::now();
            interior_submits(&cache, 0, TOTAL_SUBMITS, interior_hit_read);
            TOTAL_SUBMITS as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[WALL_RUNS / 2]
}

/// Median wall-clock hot-read submits/second over [`WALL_RUNS`] pre-warmed
/// runs of the contended workload at `threads` OS threads.
fn contended_wall_throughput(optimistic: bool, threads: usize) -> f64 {
    let total = (threads as u64 * HOT_READS_PER_THREAD) as f64;
    let mut rates: Vec<f64> = (0..WALL_RUNS)
        .map(|_| {
            let cache = warmed_cache(optimistic);
            let start = Instant::now();
            contended_hot_reads(&cache, threads, HOT_READS_PER_THREAD);
            total / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[WALL_RUNS / 2]
}

fn main() {
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut report_path = "BENCH_report.json".to_string();
    let mut write_baseline = false;
    let mut update_baseline = false;
    let mut check_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            "--report" => report_path = args.next().expect("--report needs a path"),
            "--write-baseline" => write_baseline = true,
            "--update-baseline" => update_baseline = true,
            "--check-baseline" => check_baseline = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_gate [--baseline <path>] [--report <path>] \
                     [--write-baseline | --update-baseline | --check-baseline]"
                );
                std::process::exit(2);
            }
        }
    }
    if usize::from(write_baseline) + usize::from(update_baseline) + usize::from(check_baseline) > 1
    {
        eprintln!(
            "bench_gate: --write-baseline, --update-baseline and --check-baseline \
             are mutually exclusive"
        );
        std::process::exit(2);
    }

    println!("bench_gate: quick submit-throughput workload ({TOTAL_SUBMITS} submits per run)");
    // `--check-baseline` only looks at deterministic rows, so the wall
    // measurements — the slow half of the run — are skipped; their rows
    // carry NaN and are never compared or written in that mode.
    let wall = |f: &dyn Fn() -> f64| if check_baseline { f64::NAN } else { f() };
    let wall_single = wall(&|| wall_throughput(1));
    let wall_batch64 = wall(&|| wall_throughput(64));
    let sim_unbatched = sim_scan_seconds(1);
    let sim_batched = sim_scan_seconds(QUEUE_DEPTH);
    let sim_random = sim_random_seconds();
    let mut measurements = vec![
        Measurement {
            metric: "wall: scan single-submit throughput (submits/s)".into(),
            value: wall_single,
            gated: false,
            deterministic: false,
            lower_is_better: false,
        },
        Measurement {
            metric: "wall: scan batch=64 submit throughput (submits/s)".into(),
            value: wall_batch64,
            gated: false,
            deterministic: false,
            lower_is_better: false,
        },
        Measurement {
            metric: "wall: scan batch=64 speedup over single submit (x)".into(),
            value: wall_batch64 / wall_single,
            gated: true,
            deterministic: false,
            lower_is_better: false,
        },
        Measurement {
            metric: "sim: scan device throughput at queue depth 32 (submits/sim-s)".into(),
            value: TOTAL_SUBMITS as f64 / sim_batched,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        },
        Measurement {
            metric: "sim: scan queue-merge device-time speedup at depth 32 (x)".into(),
            value: sim_unbatched / sim_batched,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        },
        Measurement {
            metric: "sim: random workload device throughput (submits/sim-s)".into(),
            value: TOTAL_SUBMITS as f64 / sim_random,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        },
    ];
    // One mixed-workload run per selectable policy contributes two
    // deterministic gated rows: simulated device throughput (a behaviour
    // change in any replacement algorithm shifts it) and the overall hit
    // ratio (which also feeds the ARC-vs-LRU acceptance check below).
    let mut policy_hit_ratio = Vec::new();
    for kind in CachePolicyKind::all() {
        let (sim_seconds, hit_ratio) = mixed_policy_run(kind);
        measurements.push(Measurement {
            metric: format!(
                "sim: {} policy mixed-workload device throughput (submits/sim-s)",
                kind.label()
            ),
            value: TOTAL_SUBMITS as f64 / sim_seconds,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        });
        measurements.push(Measurement {
            metric: format!("sim: {} policy mixed-workload hit ratio", kind.label()),
            value: hit_ratio,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        });
        policy_hit_ratio.push((kind, hit_ratio));
    }
    // Query-service request-latency percentiles at one worker: simulated,
    // so bit-identical on every machine. Gated lower-is-better — a tail
    // blow-up in the executor, the storage model or the service's
    // scheduling fails the gate even if throughput rows stay flat.
    let (lat_p50, lat_p99, lat_p999) = service_latency_percentiles();
    for (name, value) in [("p50", lat_p50), ("p99", lat_p99), ("p999", lat_p999)] {
        measurements.push(Measurement {
            metric: format!("sim: service 1-worker request latency {name} (sim-ms)"),
            value,
            gated: true,
            deterministic: true,
            lower_is_better: true,
        });
    }
    // Tier migration under the phase-shifting workload: simulated, fully
    // deterministic. The migration-off hit ratio pins the PR 7 baseline
    // behaviour bit-for-bit (migration defaults to off, so any drift here
    // is a foreground-path change); the migration-on rows pin the
    // migration engine's outcome at the shipped knob values.
    let tier = tier_migration::run();
    for (name, value) in [
        (
            "sim: tier-migration phase-shift hit ratio, migration off",
            tier.off.hit_ratio,
        ),
        (
            "sim: tier-migration phase-shift hit ratio, migration on",
            tier.on.hit_ratio,
        ),
        (
            "sim: tier-migration phase-shift hit-ratio gain, on/off (x)",
            tier.hit_gain(),
        ),
    ] {
        measurements.push(Measurement {
            metric: name.into(),
            value,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        });
    }
    // Crash recovery from the write-ahead journal: simulated, fully
    // deterministic (fixed workload, fixed crash seeds). The replay-time
    // row pins the cost of recovering the full log; the records row pins
    // the log shape (framing or workload drift shows up here); the ratio
    // row pins losslessness — full-log recovery must rebuild exactly the
    // clean run's resident set.
    let recovery = crash_recovery::run();
    measurements.push(Measurement {
        metric: "sim: recovery full-log replay time (sim-s)".into(),
        value: recovery.full.replay_sim,
        gated: true,
        deterministic: true,
        lower_is_better: true,
    });
    for (name, value) in [
        (
            "sim: recovery full-log records replayed",
            recovery.full.records_replayed as f64,
        ),
        (
            "sim: recovery blocks-recovered ratio, full log (1 = lossless)",
            recovery.blocks_recovered_ratio(),
        ),
    ] {
        measurements.push(Measurement {
            metric: name.into(),
            value,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        });
    }
    // The lock-light hot path: deterministic single-threaded equivalence
    // rows (the optimistic engine must produce bit-identical statistics
    // and simulated time to the fully locked one, while actually taking
    // its fast path), plus ungated wall-clock contended-throughput rows.
    let (hot_stats_parity, hot_time_parity, hot_fast_rate) = hot_read_equivalence();
    for (name, value) in [
        (
            "sim: contended hot-read stats parity, lock-light vs locked (1 = equal)",
            hot_stats_parity,
        ),
        (
            "sim: contended hot-read device-time parity, lock-light vs locked (1 = equal)",
            hot_time_parity,
        ),
        (
            "sim: contended hot-read optimistic fast-path hit rate (1 thread)",
            hot_fast_rate,
        ),
    ] {
        measurements.push(Measurement {
            metric: name.into(),
            value,
            gated: true,
            deterministic: true,
            lower_is_better: false,
        });
    }
    let contended_locked_8 = wall(&|| contended_wall_throughput(false, 8));
    let contended_opt = [8usize, 16, 32].map(|t| (t, wall(&|| contended_wall_throughput(true, t))));
    for (threads, rate) in contended_opt {
        measurements.push(Measurement {
            metric: format!("wall: contended hot-read throughput at {threads} threads (submits/s)"),
            value: rate,
            gated: false,
            deterministic: false,
            lower_is_better: false,
        });
    }
    measurements.push(Measurement {
        metric: "wall: contended 8-thread lock-light speedup over locked hot path (x)".into(),
        value: contended_opt[0].1 / contended_locked_8,
        gated: false,
        deterministic: false,
        lower_is_better: false,
    });
    // The shard interior, flat (open-addressing table + arena lists) vs
    // the legacy map: single-thread hit-cycle throughput on each. The
    // absolute rows are machine-dependent and ungated; the flat-vs-map
    // comparison is checked baseline-free below (both sides run in the
    // same process, so the ratio is machine-robust).
    let interior_flat = wall(&|| interior_wall_throughput(ListBackend::Flat));
    let interior_map = wall(&|| interior_wall_throughput(ListBackend::Map));
    for (backend, value) in [
        (ListBackend::Flat, interior_flat),
        (ListBackend::Map, interior_map),
    ] {
        measurements.push(Measurement {
            metric: format!(
                "wall: interior {} single-thread hit-cycle throughput (submits/s)",
                backend.label()
            ),
            value,
            gated: false,
            deterministic: false,
            lower_is_better: false,
        });
    }

    if write_baseline || update_baseline {
        // --update-baseline keeps the committed values of
        // machine-dependent rows so the regenerated file is deterministic;
        // --write-baseline snapshots everything as measured here.
        let old = if update_baseline {
            std::fs::read_to_string(&baseline_path)
                .ok()
                .and_then(|text| comparisons_from_json(&text).ok())
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        let (mut sim_changed, mut sim_unchanged, mut wall_preserved, mut wall_new) = (0, 0, 0, 0);
        let rows: Vec<PaperComparison> = measurements
            .iter()
            .map(|m| {
                let old_value = old
                    .iter()
                    .find(|r| r.metric == m.metric)
                    .map(|r| r.measured);
                let preserved = if m.deterministic { None } else { old_value };
                if update_baseline {
                    // Changed-vs-preserved summary: sim rows are compared
                    // against their committed values (a no-op bump should
                    // read "0 changed"), wall rows just report whether a
                    // committed value existed to preserve.
                    if m.deterministic {
                        match old_value {
                            Some(v) if v == m.value => {
                                sim_unchanged += 1;
                                println!("  unchanged  {} = {v:.3}", m.metric);
                            }
                            Some(v) => {
                                sim_changed += 1;
                                println!("  changed    {}: {v:.3} -> {:.3}", m.metric, m.value);
                            }
                            None => {
                                sim_changed += 1;
                                println!("  added      {} = {:.3}", m.metric, m.value);
                            }
                        }
                    } else {
                        match preserved {
                            Some(v) => {
                                wall_preserved += 1;
                                println!("  preserved  {} = {v:.3}", m.metric);
                            }
                            None => {
                                wall_new += 1;
                                println!("  measured   {} = {:.3}", m.metric, m.value);
                            }
                        }
                    }
                }
                let value = preserved.unwrap_or(m.value);
                PaperComparison::new(m.metric.clone(), value, value)
            })
            .collect();
        std::fs::write(&baseline_path, comparisons_to_json(&rows)).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot write {baseline_path}: {e}");
            std::process::exit(1);
        });
        std::fs::write(&report_path, comparisons_to_json(&rows)).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot write {report_path}: {e}");
            std::process::exit(1);
        });
        if update_baseline {
            println!(
                "summary: {sim_changed} sim row(s) changed, {sim_unchanged} unchanged; \
                 {wall_preserved} wall row(s) preserved, {wall_new} newly measured"
            );
        }
        println!("baseline written to {baseline_path}");
        return;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match comparisons_from_json(&text) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("bench_gate: cannot parse {baseline_path}: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read {baseline_path}: {e} \
                 (run with --write-baseline to create it)"
            );
            std::process::exit(1);
        }
    };
    let baseline_value = |metric: &str| -> Option<f64> {
        baseline
            .iter()
            .find(|r| r.metric == metric)
            .map(|r| r.measured)
    };

    if check_baseline {
        // `--update-baseline` overwrites sim rows with freshly measured
        // values and preserves everything else, so the committed baseline
        // is stale iff any deterministic row differs from its committed
        // value. Baseline floats are written in shortest round-trip form,
        // so the equality below is bit-exact, not a tolerance band.
        let mut drift = Vec::new();
        for m in measurements.iter().filter(|m| m.deterministic) {
            match baseline_value(&m.metric) {
                Some(v) if v == m.value => {}
                Some(v) => drift.push(format!(
                    "{}: committed {v} != regenerated {}",
                    m.metric, m.value
                )),
                None => drift.push(format!("{}: missing from {baseline_path}", m.metric)),
            }
        }
        if drift.is_empty() {
            let checked = measurements.iter().filter(|m| m.deterministic).count();
            println!("bench_gate: baseline is current ({checked} sim rows bit-identical)");
            return;
        }
        for d in &drift {
            eprintln!("bench_gate: STALE BASELINE: {d}");
        }
        eprintln!(
            "bench_gate: {baseline_path} no longer matches the code — refresh it \
             with --update-baseline and commit the result"
        );
        std::process::exit(1);
    }

    let mut failures = Vec::new();

    // Report rows: `paper` holds the baseline value (the fresh measurement
    // for ungated rows without one), `measured` the value from this run —
    // the same shape the paper-fidelity comparisons use. A *gated* metric
    // with no baseline row is an error, not a silent self-baseline.
    let report: Vec<PaperComparison> = measurements
        .iter()
        .map(|m| {
            let base = baseline_value(&m.metric);
            if m.gated && base.is_none() {
                failures.push(format!(
                    "{}: no row in {baseline_path} — refresh it with --update-baseline",
                    m.metric
                ));
            }
            PaperComparison::new(m.metric.clone(), base.unwrap_or(m.value), m.value)
        })
        .collect();
    for stale in baseline
        .iter()
        .filter(|b| measurements.iter().all(|m| m.metric != b.metric))
    {
        eprintln!(
            "bench_gate: warning: baseline row {:?} matches no measured metric (stale?)",
            stale.metric
        );
    }

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .zip(&report)
        .map(|(m, r)| {
            vec![
                r.metric.clone(),
                format!("{:.3}", r.paper),
                format!("{:.3}", r.measured),
                format!("{:.2}", r.measured / r.paper),
                if m.gated { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["metric", "baseline", "measured", "ratio", "gated"], &rows)
    );

    std::fs::write(&report_path, comparisons_to_json(&report)).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot write {report_path}: {e}");
        std::process::exit(1);
    });
    println!("report written to {report_path}");

    // Acceptance criterion of the vectored path, gated even against a
    // stale baseline: batched submission must beat per-request submission.
    if wall_batch64 <= wall_single {
        failures.push(format!(
            "batch=64 throughput ({wall_batch64:.0}/s) is not strictly better than \
             single-submit ({wall_single:.0}/s)"
        ));
    }
    // Acceptance criteria of the lock-light hot path, baseline-free: the
    // optimistic engine must be *exactly* equivalent to the locked one on
    // the deterministic run (parity rows are 1 or 0, so the 25% band would
    // be meaningless), must actually take its fast path, and must beat the
    // locked engine's wall-clock throughput under 8-thread contention.
    if hot_stats_parity != 1.0 {
        failures.push(
            "lock-light hot path diverged from the locked path's statistics \
             on the deterministic hot-read run"
                .to_string(),
        );
    }
    if hot_time_parity != 1.0 {
        failures.push(
            "lock-light hot path diverged from the locked path's simulated \
             device time on the deterministic hot-read run"
                .to_string(),
        );
    }
    if hot_fast_rate <= 0.0 {
        failures.push(
            "optimistic fast path served no hot-read hits (rate 0) — the \
             lock-light path is not engaging"
                .to_string(),
        );
    }
    if contended_opt[0].1 <= contended_locked_8 {
        failures.push(format!(
            "8-thread contended hot-read throughput with the lock-light path \
             ({:.0}/s) is not strictly better than the locked path ({contended_locked_8:.0}/s)",
            contended_opt[0].1
        ));
    }
    // Acceptance criterion of the cache-friendly shard interior, also
    // baseline-free: the flat interior (open-addressing table + arena
    // lists) must be at least as fast as the legacy map interior on the
    // single-thread hit cycle it was built for. Both sides run in this
    // process, so the comparison is machine-robust.
    if interior_flat < interior_map {
        failures.push(format!(
            "interior flat hit-cycle throughput ({interior_flat:.0}/s) fell below \
             the legacy map interior ({interior_map:.0}/s, ratio {:.2})",
            interior_flat / interior_map
        ));
    } else {
        println!(
            "interior flat-over-map hit-cycle speedup: {:.2}x",
            interior_flat / interior_map
        );
    }
    // Acceptance criterion of the adaptive policy, also baseline-free:
    // self-tuning ARC must hit at least as often as engine-LRU on the
    // mixed workload (scan pollution plus a reused random set is exactly
    // the shape ARC exists to win).
    let hit_of = |kind: CachePolicyKind| {
        policy_hit_ratio
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| *h)
            .expect("every policy was measured")
    };
    let (arc_hits, lru_hits) = (hit_of(CachePolicyKind::Arc), hit_of(CachePolicyKind::Lru));
    if arc_hits < lru_hits {
        failures.push(format!(
            "ARC mixed-workload hit ratio ({arc_hits:.4}) fell below engine-LRU's \
             ({lru_hits:.4})"
        ));
    }
    // Acceptance criterion of the migration engine, also baseline-free:
    // enabling migration must strictly raise the hit ratio on the
    // phase-shift workload (the whole point of following working-set
    // shifts that selective eviction alone cannot).
    if tier.on.hit_ratio <= tier.off.hit_ratio {
        failures.push(format!(
            "tier migration did not improve the phase-shift hit ratio \
             ({:.4} on vs {:.4} off)",
            tier.on.hit_ratio, tier.off.hit_ratio
        ));
    }
    for (m, row) in measurements.iter().zip(&report) {
        if !m.gated {
            continue;
        }
        // Lower-is-better rows (latencies) gate with the mirrored
        // condition: fail when measured exceeds baseline / floor.
        if m.lower_is_better {
            if row.measured > row.paper / REGRESSION_FLOOR {
                failures.push(format!(
                    "{}: measured {:.3} exceeds baseline {:.3} by more than {:.0}%",
                    row.metric,
                    row.measured,
                    row.paper,
                    (1.0 / REGRESSION_FLOOR - 1.0) * 100.0
                ));
            }
        } else if row.measured < REGRESSION_FLOOR * row.paper {
            failures.push(format!(
                "{}: measured {:.3} is below {:.0}% of baseline {:.3}",
                row.metric,
                row.measured,
                REGRESSION_FLOOR * 100.0,
                row.paper
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_gate: REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "bench_gate: all gated metrics within {:.0}% of baseline",
        REGRESSION_FLOOR * 100.0
    );
}
