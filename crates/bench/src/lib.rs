//! Shared helpers for the benchmark harness.
//!
//! Every Criterion bench in `benches/` regenerates one table or figure of
//! the paper at a reduced TPC-H scale; the `run_experiments` binary runs
//! them all once and prints the rows, which is what EXPERIMENTS.md records.

use hstorage_tpch::TpchScale;

/// The scale the Criterion benches run at. Small enough that a single
/// experiment iteration completes in well under a second, large enough that
/// the cache/buffer-pool ratios are meaningful.
pub fn bench_scale() -> TpchScale {
    TpchScale::new(0.02)
}

/// The scale the `run_experiments` binary uses for the single-query
/// experiments (Figures 4–9, Tables 4–7).
pub fn report_scale() -> TpchScale {
    TpchScale::new(0.1)
}

/// The scale used for the long-running sequence and concurrency experiments
/// (Figure 11 / Table 8, Table 9 / Figure 12).
pub fn report_concurrency_scale() -> TpchScale {
    TpchScale::new(0.05)
}

/// The submit-throughput workload shared by the `batch_throughput` bench
/// and the `bench_gate` CI binary.
///
/// Both must measure the *same* workload — the bench is how a developer
/// inspects a regression the gate reports — so the request shapes, cache
/// construction and drive loop live here, once.
pub mod workload {
    use hstorage_cache::{HybridCache, StorageSystem};
    use hstorage_storage::{
        BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass,
    };

    /// Cache capacity in blocks.
    pub const BLOCKS: u64 = 4_096;
    /// Requests per run.
    pub const TOTAL_SUBMITS: u64 = 10_000;
    /// Device queue depth used by the batched configurations.
    pub const QUEUE_DEPTH: usize = 32;
    /// Lock-striping shard count.
    pub const SHARDS: usize = 8;

    /// Adjacent single-block sequential reads — the shape a table scan
    /// produces (bypasses the cache, merges on the device).
    pub fn scan_read(i: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(i, 1), true),
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        )
    }

    /// Scattered single-block random reads at mixed priorities — exercises
    /// cache management; no transfers merge.
    pub fn random_read(i: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new((i * 17) % (BLOCKS * 2), 1), false),
            RequestClass::Random,
            QosPolicy::priority(2 + (i % 5) as u8),
        )
    }

    /// A fresh sharded hybrid cache at the given device queue depth.
    pub fn fresh_cache(queue_depth: usize) -> HybridCache {
        HybridCache::with_shard_count_and_queue_depth(
            PolicyConfig::paper_default(),
            BLOCKS,
            SHARDS,
            queue_depth,
        )
    }

    /// Drives [`TOTAL_SUBMITS`] requests of the given shape through `cache`
    /// in `batch`-sized vectored submissions (batch 1 degenerates to the
    /// per-request `submit` path). Returns the resident block count so
    /// benches have a value to `black_box`.
    pub fn drive(
        cache: &HybridCache,
        batch: usize,
        make: impl Fn(u64) -> ClassifiedRequest,
    ) -> u64 {
        let mut buf = Vec::with_capacity(batch);
        for i in 0..TOTAL_SUBMITS {
            buf.push(make(i));
            if buf.len() == batch {
                cache.submit_batch(std::mem::take(&mut buf));
            }
        }
        if !buf.is_empty() {
            cache.submit_batch(buf);
        }
        cache.resident_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(bench_scale().scale_factor <= report_concurrency_scale().scale_factor);
        assert!(report_concurrency_scale().scale_factor <= report_scale().scale_factor);
    }
}
