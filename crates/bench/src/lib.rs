//! Shared helpers for the benchmark harness.
//!
//! Every Criterion bench in `benches/` regenerates one table or figure of
//! the paper at a reduced TPC-H scale; the `run_experiments` binary runs
//! them all once and prints the rows, which is what EXPERIMENTS.md records.

use hstorage_tpch::TpchScale;

/// The scale the Criterion benches run at. Small enough that a single
/// experiment iteration completes in well under a second, large enough that
/// the cache/buffer-pool ratios are meaningful.
pub fn bench_scale() -> TpchScale {
    TpchScale::new(0.02)
}

/// The scale the `run_experiments` binary uses for the single-query
/// experiments (Figures 4–9, Tables 4–7).
pub fn report_scale() -> TpchScale {
    TpchScale::new(0.1)
}

/// The scale used for the long-running sequence and concurrency experiments
/// (Figure 11 / Table 8, Table 9 / Figure 12).
pub fn report_concurrency_scale() -> TpchScale {
    TpchScale::new(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(bench_scale().scale_factor <= report_concurrency_scale().scale_factor);
        assert!(report_concurrency_scale().scale_factor <= report_scale().scale_factor);
    }
}
