//! Shared helpers for the benchmark harness.
//!
//! Every Criterion bench in `benches/` regenerates one table or figure of
//! the paper at a reduced TPC-H scale; the `run_experiments` binary runs
//! them all once and prints the rows, which is what EXPERIMENTS.md records.

use hstorage_tpch::TpchScale;

/// The scale the Criterion benches run at. Small enough that a single
/// experiment iteration completes in well under a second, large enough that
/// the cache/buffer-pool ratios are meaningful.
pub fn bench_scale() -> TpchScale {
    TpchScale::new(0.02)
}

/// The scale the `run_experiments` binary uses for the single-query
/// experiments (Figures 4–9, Tables 4–7).
pub fn report_scale() -> TpchScale {
    TpchScale::new(0.1)
}

/// The scale used for the long-running sequence and concurrency experiments
/// (Figure 11 / Table 8, Table 9 / Figure 12).
pub fn report_concurrency_scale() -> TpchScale {
    TpchScale::new(0.05)
}

/// The submit-throughput workload shared by the `batch_throughput` bench
/// and the `bench_gate` CI binary.
///
/// Both must measure the *same* workload — the bench is how a developer
/// inspects a regression the gate reports — so the request shapes, cache
/// construction and drive loop live here, once.
pub mod workload {
    use hstorage_cache::{
        CachePolicyKind, HybridCache, ListBackend, StorageConfig, StorageConfigKind, StorageSystem,
    };
    use hstorage_engine::{
        run_streams_service, Access, Catalog, ConcurrencyRegistry, ExecutorConfig, ObjectKind,
        OperatorKind, PlanNode, PlanTree, ServiceConfig, StreamSpec,
    };
    use hstorage_storage::{
        BlockRange, ClassifiedRequest, IoRequest, PolicyConfig, QosPolicy, RequestClass,
    };
    use std::sync::Arc;

    /// Cache capacity in blocks.
    pub const BLOCKS: u64 = 4_096;
    /// Requests per run.
    pub const TOTAL_SUBMITS: u64 = 10_000;
    /// Device queue depth used by the batched configurations.
    pub const QUEUE_DEPTH: usize = 32;
    /// Lock-striping shard count.
    pub const SHARDS: usize = 8;

    /// Adjacent single-block sequential reads — the shape a table scan
    /// produces (bypasses the cache, merges on the device).
    pub fn scan_read(i: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(i, 1), true),
            RequestClass::Sequential,
            QosPolicy::NonCachingNonEviction,
        )
    }

    /// Scattered single-block random reads at mixed priorities — exercises
    /// cache management; no transfers merge.
    pub fn random_read(i: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new((i * 17) % (BLOCKS * 2), 1), false),
            RequestClass::Random,
            QosPolicy::priority(2 + (i % 5) as u8),
        )
    }

    /// Deterministic address scatter (multiplicative hashing), so each
    /// request class spreads over every shard instead of correlating with
    /// `i % 8`, and re-reference distances vary enough that replacement
    /// policies actually diverge.
    fn mix(i: u64) -> u64 {
        i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33
    }

    /// A deterministic blend of all four request shapes — a re-referenced
    /// hot random set (reuse the policies can protect), one-shot cold
    /// random reads and fresh sequential scan traffic (pollution
    /// pressure), buffered updates over a write-hot region and
    /// temporary-data writes — the workload the cache-policy sweep runs,
    /// because replacement policies only diverge when admission, eviction
    /// and reuse all happen.
    pub fn mixed_request(i: u64) -> ClassifiedRequest {
        match i % 8 {
            // Hot random reads over half the cache capacity.
            0 | 1 => ClassifiedRequest::new(
                IoRequest::read(BlockRange::new(mix(i) % (BLOCKS / 2), 1), false),
                RequestClass::Random,
                QosPolicy::priority(2 + (i % 5) as u8),
            ),
            // Cold random reads: mostly one-shot pollution.
            2 | 3 => ClassifiedRequest::new(
                IoRequest::read(BlockRange::new(10_000 + mix(i + 7_919) % 50_000, 1), false),
                RequestClass::Random,
                QosPolicy::priority(2 + (i % 5) as u8),
            ),
            // A fresh table scan: 4-block adjacent sequential transfers
            // covering every shard (and mergeable on the device).
            4 | 5 => ClassifiedRequest::new(
                IoRequest::read(
                    BlockRange::new(100_000 + (i / 8) * 8 + if i % 8 == 5 { 4 } else { 0 }, 4),
                    true,
                ),
                RequestClass::Sequential,
                QosPolicy::NonCachingNonEviction,
            ),
            // Buffered updates over a small write-hot region (dirty
            // blocks the write-aware policies treat differently).
            6 => ClassifiedRequest::new(
                IoRequest::write(BlockRange::new(mix(i ^ 0xABCD) % (BLOCKS / 4), 1), false),
                RequestClass::Update,
                QosPolicy::WriteBuffer,
            ),
            // Temporary-data writes, mostly one-shot and dirty.
            _ => ClassifiedRequest::new(
                IoRequest::write(
                    BlockRange::new(50_000 + mix(i + 31) % (BLOCKS / 2), 1),
                    false,
                ),
                RequestClass::TemporaryData,
                QosPolicy::priority(1),
            ),
        }
    }

    /// Hot blocks of the contended-read workload: exactly one per shard,
    /// shared by every thread (the "index root page" shape). Because each
    /// shard has a single hot block, the optimistic hit descriptor of
    /// every shard stays permanently armed no matter how threads
    /// interleave — the workload isolates pure lock-path cost.
    pub const HOT_SET: u64 = SHARDS as u64;
    /// Hot reads each thread issues per contended run.
    pub const HOT_READS_PER_THREAD: u64 = 2_000;

    /// The `i`-th hot read of the contended workload: a single-block
    /// priority-2 random read that rotates over the [`HOT_SET`] every 16
    /// requests. All threads share one schedule, so under contention they
    /// pile onto the same shard — worst case for a mutex hot path, best
    /// case for an optimistic read view.
    pub fn hot_read(i: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new((i / 16) % HOT_SET, 1), false),
            RequestClass::Random,
            QosPolicy::priority(2),
        )
    }

    /// A sharded cache pre-warmed for the contended hot-read workload:
    /// the [`HOT_SET`] is resident (first pass allocates) and every
    /// shard's optimistic hit descriptor is armed (second pass hits), so
    /// every subsequent [`hot_read`] is a cache hit. Statistics are reset
    /// after warm-up; the `optimistic` flag selects the lock-light or the
    /// fully locked (pre-optimization) hot path.
    pub fn warmed_cache(optimistic: bool) -> HybridCache {
        warmed_backend_cache(optimistic, ListBackend::default())
    }

    /// As [`warmed_cache`], with an explicit shard-interior backend — the
    /// contended bench runs the flat and the legacy map interior
    /// side-by-side at full thread count.
    pub fn warmed_backend_cache(optimistic: bool, backend: ListBackend) -> HybridCache {
        let cache = fresh_cache(1)
            .with_interior_backend(backend)
            .with_optimistic_reads(optimistic);
        for _ in 0..2 {
            for b in 0..HOT_SET {
                cache.submit(hot_read(b * 16));
            }
        }
        cache.reset_stats();
        cache
    }

    /// Drives `per_thread` hot reads through `cache` from each of
    /// `threads` OS threads, all sharing the [`hot_read`] schedule.
    /// Returns the resident block count so benches have a value to
    /// `black_box`.
    pub fn contended_hot_reads(cache: &HybridCache, threads: usize, per_thread: u64) -> u64 {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 0..per_thread {
                        cache.submit(hot_read(i));
                    }
                });
            }
        });
        cache.resident_blocks()
    }

    /// Distinct blocks of the shard-interior latency working set: half the
    /// cache capacity, so the set is fully resident after one warm-up pass
    /// and every shard holds `INTERIOR_SET / SHARDS` distinct hot blocks.
    pub const INTERIOR_SET: u64 = BLOCKS / 2;

    /// The `i`-th read of the interior *hit* cycle: a single-block
    /// priority-2 random read cycling over the [`INTERIOR_SET`]. Because
    /// each shard holds hundreds of distinct resident blocks, consecutive
    /// hits to a shard land on different blocks — the optimistic hit
    /// descriptor never matches, so every submit takes the full locked
    /// path: stripe mutex, metadata probe, policy-list touch. That is
    /// exactly the path the interior backends (flat vs map) differ on.
    pub fn interior_hit_read(i: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(i % INTERIOR_SET, 1), false),
            RequestClass::Random,
            QosPolicy::priority(2),
        )
    }

    /// The `i`-th read of the interior *miss* cycle: a never-repeating
    /// address past the warmed set, so every submit misses, probes the
    /// table, allocates a slot and — once the cache fills — evicts. This
    /// exercises the insert/remove and list push/pop half of the interior.
    pub fn interior_miss_read(i: u64) -> ClassifiedRequest {
        ClassifiedRequest::new(
            IoRequest::read(BlockRange::new(INTERIOR_SET + 1 + i, 1), false),
            RequestClass::Random,
            QosPolicy::priority(2),
        )
    }

    /// A fresh single-queue-depth sharded cache running the default policy
    /// on the chosen shard-interior backend (cold — miss-cycle starting
    /// point).
    pub fn fresh_interior_cache(backend: ListBackend) -> HybridCache {
        fresh_cache(1).with_interior_backend(backend)
    }

    /// A cache on the chosen interior backend pre-warmed so the whole
    /// [`INTERIOR_SET`] is resident; statistics are reset after warm-up so
    /// every subsequent [`interior_hit_read`] is a cache hit.
    pub fn warmed_interior_cache(backend: ListBackend) -> HybridCache {
        let cache = fresh_interior_cache(backend);
        for i in 0..INTERIOR_SET {
            cache.submit(interior_hit_read(i));
        }
        cache.reset_stats();
        cache
    }

    /// Drives `n` single-thread submits of the given shape through
    /// `cache`, offset by `base` so back-to-back runs of the miss cycle
    /// keep generating fresh addresses. Returns the resident block count
    /// so benches have a value to `black_box`.
    pub fn interior_submits(
        cache: &HybridCache,
        base: u64,
        n: u64,
        make: impl Fn(u64) -> ClassifiedRequest,
    ) -> u64 {
        for i in base..base + n {
            cache.submit(make(i));
        }
        cache.resident_blocks()
    }

    /// A fresh sharded hybrid cache at the given device queue depth.
    pub fn fresh_cache(queue_depth: usize) -> HybridCache {
        fresh_policy_cache(CachePolicyKind::SemanticPriority, queue_depth)
    }

    /// A fresh sharded cache engine running the given replacement policy.
    pub fn fresh_policy_cache(kind: CachePolicyKind, queue_depth: usize) -> HybridCache {
        HybridCache::with_shard_count_and_queue_depth(
            PolicyConfig::paper_default(),
            BLOCKS,
            SHARDS,
            queue_depth,
        )
        .with_cache_policy(kind)
    }

    /// Drives [`TOTAL_SUBMITS`] requests of the given shape through `cache`
    /// in `batch`-sized vectored submissions (batch 1 degenerates to the
    /// per-request `submit` path). Returns the resident block count so
    /// benches have a value to `black_box`.
    pub fn drive(
        cache: &HybridCache,
        batch: usize,
        make: impl Fn(u64) -> ClassifiedRequest,
    ) -> u64 {
        let mut buf = Vec::with_capacity(batch);
        for i in 0..TOTAL_SUBMITS {
            buf.push(make(i));
            if buf.len() == batch {
                cache.submit_batch(std::mem::take(&mut buf));
            }
        }
        if !buf.is_empty() {
            cache.submit_batch(buf);
        }
        cache.resident_blocks()
    }

    /// Runs a fixed mixed-shape query workload through the query service
    /// at **one worker** — fully deterministic: the closed-loop driver
    /// executes every stream's head query in stream order, then the
    /// follow-ups generation by generation — and returns the simulated
    /// per-request latency percentiles in milliseconds: `(p50, p99, p999)`.
    ///
    /// The workload mixes sequential scans, random index lookups and
    /// temporary spills across 24 streams so the latency distribution has
    /// a genuine tail; being simulated device time, the percentiles are
    /// bit-identical on every machine and serve as gated CI rows.
    pub fn service_latency_percentiles() -> (f64, f64, f64) {
        let mut catalog = Catalog::new();
        let table = catalog.register("orders", ObjectKind::Table, BlockRange::new(0u64, 600));
        let index = catalog.register("idx", ObjectKind::Index, BlockRange::new(20_000u64, 80));
        catalog.set_temp_region(BlockRange::new(50_000u64, 2_000));
        let seq = |passes| {
            PlanTree::new(
                "seq",
                PlanNode::leaf(OperatorKind::SeqScan, Access::SeqScan { table, passes }),
            )
        };
        let lookup = |lookups| {
            PlanTree::new(
                "rand",
                PlanNode::leaf(
                    OperatorKind::IndexScan,
                    Access::IndexScan {
                        index,
                        table,
                        lookups,
                        index_hot_fraction: 0.5,
                        table_hot_fraction: 0.2,
                    },
                ),
            )
        };
        let spill = |blocks| {
            PlanTree::new(
                "spill",
                PlanNode::leaf(
                    OperatorKind::Hash,
                    Access::TempSpill {
                        blocks,
                        read_passes: 1,
                    },
                ),
            )
        };
        let streams: Vec<StreamSpec> = (0..24u64)
            .map(|i| StreamSpec {
                name: format!("s{i}"),
                queries: match i % 4 {
                    0 => vec![seq(1), lookup(40)],
                    1 => vec![lookup(80), spill(24)],
                    2 => vec![spill(48), seq(1)],
                    _ => vec![lookup(20), seq(2)],
                },
            })
            .collect();
        let storage: Arc<dyn StorageSystem> =
            StorageConfig::new(StorageConfigKind::HStorageDb, BLOCKS).build_shared();
        let registry = ConcurrencyRegistry::new();
        let report = run_streams_service(
            ExecutorConfig {
                buffer_pool_blocks: 128,
                ..ExecutorConfig::default()
            },
            ServiceConfig {
                workers: 1,
                queue_depth: 8,
            },
            PolicyConfig::paper_default(),
            &registry,
            &streams,
            &catalog,
            &storage,
        );
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        (
            ms(report.latency.p50().expect("non-empty workload")),
            ms(report.latency.p99().expect("non-empty workload")),
            ms(report.latency.p999().expect("non-empty workload")),
        )
    }

    /// Runs the mixed workload once under `kind` and returns the two
    /// deterministic figures the CI gate tracks per policy: simulated
    /// device seconds and the overall cache hit ratio.
    pub fn mixed_policy_run(kind: CachePolicyKind) -> (f64, f64) {
        let cache = fresh_policy_cache(kind, QUEUE_DEPTH);
        drive(&cache, 64, mixed_request);
        let totals = cache.stats().totals();
        let hit_ratio = if totals.accessed_blocks == 0 {
            0.0
        } else {
            totals.cache_hits as f64 / totals.accessed_blocks as f64
        };
        (cache.now().as_secs_f64(), hit_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(bench_scale().scale_factor <= report_concurrency_scale().scale_factor);
        assert!(report_concurrency_scale().scale_factor <= report_scale().scale_factor);
    }
}
